//! The fuzzer's structured program space: a statement AST that is
//! strictly richer than the integration tests' generator, its
//! [`Gen`]erators, [`Shrink`] candidates, and compilation to verified
//! `gmt-ir`.
//!
//! Every program terminates by construction (all loops have static
//! trip counts), every memory access is masked in bounds, and the
//! compiled function always passes `gmt_ir::verify` — so any failure
//! downstream is a pipeline bug, not a generator artifact. On top of
//! the shapes the integration generator covers (hammocks, fixed-trip
//! nests, register/memory recurrences), this grammar adds:
//!
//! - **multiple arrays** with may-alias index patterns (`arr[k]`
//!   random-indexed, fixed-cell, and affine accesses over the same
//!   three objects), plus a **select-pointer** diamond that gives one
//!   address register a two-object points-to set;
//! - **zero-trip loops** (`Loop` trip counts include 0: the body block
//!   becomes statically dead code with profile weight 0);
//! - **bottom-tested loops** (`DoWhile`) whose empty-body form compiles
//!   to a single self-looping block (a critical self-edge the
//!   normalizer must split);
//! - **profile-skewed branches** (`If` conditions of the form
//!   `(reg & 7) < k`, so arm probabilities range from never to always);
//! - **dead registers** (`Dead` defines a fresh register no one reads)
//!   and empty `If` arms / empty loop bodies (empty blocks after
//!   compilation).

use gmt_ir::{BinOp, Function, FunctionBuilder, Reg};
use gmt_testkit::{one_of, ranged, recursive, vec_of, weighted, Gen, Shrink, TestRng};

/// Number of mutable program registers in the pool.
pub const REG_POOL: u32 = 6;
/// Cells in each memory array.
pub const MEM_CELLS: u64 = 16;
/// Number of plain arrays (`SelectPtr`/`Load`/`Store` address these).
pub const NUM_ARRAYS: u8 = 3;

/// A structured statement of the fuzz grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FStmt {
    /// `pool[dst] = pool[a] <op> pool[b]` — loop-carried register
    /// recurrences when it appears inside a loop body.
    Bin(u8, BinOp, u8, u8),
    /// `pool[dst] = imm`.
    Const(u8, i8),
    /// `pool[dst] = arr[a][pool[idx] & 15]`.
    Load(u8, u8, u8),
    /// `arr[a][pool[idx] & 15] = pool[src]`.
    Store(u8, u8, u8),
    /// `pool[dst] = arr[a][off & 15]` — a fixed cell, so a load/store
    /// pair at the same cell inside a loop is a memory recurrence.
    LoadAt(u8, u8, u8),
    /// `arr[a][off & 15] = pool[src]`.
    StoreAt(u8, u8, u8),
    /// `pool[dst] = arr[a][loopvar + (off & 7)]` — affine load through
    /// the innermost loop counter (offset-only at top level).
    LoadAffine(u8, u8, u8),
    /// `arr[a][loopvar + (off & 7)] = pool[src]` — affine store.
    StoreAffine(u8, u8, u8),
    /// `ptr = pool[c] != 0 ? &arr[a] : &arr[b]` — a diamond that gives
    /// the dedicated pointer register a two-object points-to set.
    SelectPtr(u8, u8, u8),
    /// `pool[dst] = ptr[pool[idx] & 15]` — a may-alias load through the
    /// selected pointer.
    LoadPtr(u8, u8),
    /// `ptr[pool[idx] & 15] = pool[src]`.
    StorePtr(u8, u8),
    /// `output pool[src]`.
    Output(u8),
    /// A fresh register defined to `imm` and never read (dead code).
    Dead(i8),
    /// `if (pool[c] & 7) < (skew % 9) { .. } else { .. }` — arm
    /// probability skews from 0/8 to 8/8; either arm may be empty.
    If(u8, u8, Vec<FStmt>, Vec<FStmt>),
    /// Top-tested loop of `trips % 5` iterations — **zero-trip
    /// possible** (the body is then dead code); the body may be empty.
    Loop(u8, Vec<FStmt>),
    /// Bottom-tested loop of `trips % 4 + 1` iterations; with an empty
    /// body it compiles to one self-looping block.
    DoWhile(u8, Vec<FStmt>),
}

/// Any byte (indices, sources, trip counts, skews).
fn byte() -> Gen<u8> {
    Gen::new(|rng| rng.next_u64() as u8)
}

/// Every [`BinOp`] the generator emits, including the float-class ops
/// (integer semantics, but distinct FU class and latency in the timed
/// model).
pub fn bin_op_gen() -> Gen<BinOp> {
    one_of(
        [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Min,
            BinOp::Max,
            BinOp::FAdd,
            BinOp::FMul,
        ]
        .into_iter()
        .map(Gen::just)
        .collect(),
    )
}

/// A statement tree of bounded depth covering the full grammar.
pub fn fstmt_gen() -> Gen<FStmt> {
    let imm = Gen::new(|rng: &mut TestRng| rng.next_u64() as i8);
    let leaf = weighted(vec![
        (
            3,
            byte()
                .zip(bin_op_gen())
                .zip(byte())
                .zip(byte())
                .map(|(((d, op), a), b)| FStmt::Bin(d, op, a, b)),
        ),
        (2, byte().zip(imm.clone()).map(|(d, v)| FStmt::Const(d, v))),
        (2, byte().zip(byte()).zip(byte()).map(|((a, d), i)| FStmt::Load(a, d, i))),
        (2, byte().zip(byte()).zip(byte()).map(|((a, s), i)| FStmt::Store(a, s, i))),
        (1, byte().zip(byte()).zip(byte()).map(|((a, d), o)| FStmt::LoadAt(a, d, o))),
        (1, byte().zip(byte()).zip(byte()).map(|((a, s), o)| FStmt::StoreAt(a, s, o))),
        (1, byte().zip(byte()).zip(byte()).map(|((a, d), o)| FStmt::LoadAffine(a, d, o))),
        (1, byte().zip(byte()).zip(byte()).map(|((a, s), o)| FStmt::StoreAffine(a, s, o))),
        (1, byte().zip(byte()).zip(byte()).map(|((c, a), b)| FStmt::SelectPtr(c, a, b))),
        (1, byte().zip(byte()).map(|(d, i)| FStmt::LoadPtr(d, i))),
        (1, byte().zip(byte()).map(|(s, i)| FStmt::StorePtr(s, i))),
        (2, byte().map(FStmt::Output)),
        (1, imm.map(FStmt::Dead)),
    ]);
    recursive(3, leaf, |inner| {
        weighted(vec![
            (
                2,
                byte()
                    .zip(byte())
                    .zip(vec_of(inner.clone(), 0, 4))
                    .zip(vec_of(inner.clone(), 0, 4))
                    .map(|(((c, k), t), e)| FStmt::If(c, k, t, e)),
            ),
            (2, byte().zip(vec_of(inner.clone(), 0, 4)).map(|(n, b)| FStmt::Loop(n, b))),
            (1, byte().zip(vec_of(inner, 0, 3)).map(|(n, b)| FStmt::DoWhile(n, b))),
        ])
    })
}

/// A whole random program: 1–9 top-level statements.
pub fn fprogram_gen() -> Gen<Vec<FStmt>> {
    vec_of(fstmt_gen(), 1, 10)
}

/// Which pipeline configuration a fuzz case drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// DSWP partitioner via the `Parallelizer`.
    Dswp,
    /// DSWP + COCO.
    DswpCoco,
    /// GREMIO partitioner via the `Parallelizer`.
    Gremio,
    /// GREMIO + COCO.
    GremioCoco,
    /// A seeded pseudo-random instruction partition, baseline MTCG.
    SeededMtcg,
    /// A seeded pseudo-random partition, COCO-optimized plan.
    SeededCoco,
}

impl Mode {
    /// All modes, in the `mode % 6` encoding order.
    pub const ALL: [Mode; 6] = [
        Mode::Dswp,
        Mode::DswpCoco,
        Mode::Gremio,
        Mode::GremioCoco,
        Mode::SeededMtcg,
        Mode::SeededCoco,
    ];

    /// Decodes a generated byte.
    pub fn from_byte(b: u8) -> Mode {
        Mode::ALL[b as usize % Mode::ALL.len()]
    }

    /// Stable display label.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Dswp => "dswp",
            Mode::DswpCoco => "dswp+coco",
            Mode::Gremio => "gremio",
            Mode::GremioCoco => "gremio+coco",
            Mode::SeededMtcg => "seeded-mtcg",
            Mode::SeededCoco => "seeded-coco",
        }
    }
}

/// One differential fuzz case: a program plus the pipeline
/// configuration the oracle drives it through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// The structured program.
    pub program: Vec<FStmt>,
    /// Thread count for the partitioner / seeded partition (2–4).
    pub threads: u32,
    /// Seed of the pseudo-random partition (seeded modes only).
    pub part_seed: u64,
    /// Which pipeline to drive (`Mode::from_byte`).
    pub mode: u8,
}

impl FuzzCase {
    /// The decoded pipeline mode.
    pub fn mode(&self) -> Mode {
        Mode::from_byte(self.mode)
    }
}

/// The generator for whole fuzz cases. One `u64` seed fully determines
/// a case via [`case_from_seed`].
pub fn case_gen() -> Gen<FuzzCase> {
    fprogram_gen()
        .zip(ranged(2u32, 5))
        .zip(gmt_testkit::full_u64())
        .zip(ranged(0u8, 6))
        .map(|(((program, threads), part_seed), mode)| FuzzCase {
            program,
            threads,
            part_seed,
            mode,
        })
}

/// The case a given seed generates — the whole corpus/replay contract:
/// a corpus entry is just this one number.
pub fn case_from_seed(seed: u64) -> FuzzCase {
    case_gen().sample(&mut TestRng::new(seed))
}

impl Shrink for FStmt {
    fn shrinks(&self) -> Vec<FStmt> {
        match self {
            FStmt::Bin(d, op, a, b) => {
                let mut out: Vec<FStmt> = (*d, *a, *b)
                    .shrinks()
                    .into_iter()
                    .map(|(d, a, b)| FStmt::Bin(d, *op, a, b))
                    .collect();
                if *op != BinOp::Add {
                    out.insert(0, FStmt::Bin(*d, BinOp::Add, *a, *b));
                }
                out
            }
            FStmt::Const(d, v) => {
                (*d, *v).shrinks().into_iter().map(|(d, v)| FStmt::Const(d, v)).collect()
            }
            FStmt::Load(a, d, i) => {
                (*a, *d, *i).shrinks().into_iter().map(|(a, d, i)| FStmt::Load(a, d, i)).collect()
            }
            FStmt::Store(a, s, i) => {
                (*a, *s, *i).shrinks().into_iter().map(|(a, s, i)| FStmt::Store(a, s, i)).collect()
            }
            FStmt::LoadAt(a, d, o) => {
                (*a, *d, *o).shrinks().into_iter().map(|(a, d, o)| FStmt::LoadAt(a, d, o)).collect()
            }
            FStmt::StoreAt(a, s, o) => (*a, *s, *o)
                .shrinks()
                .into_iter()
                .map(|(a, s, o)| FStmt::StoreAt(a, s, o))
                .collect(),
            FStmt::LoadAffine(a, d, o) => (*a, *d, *o)
                .shrinks()
                .into_iter()
                .map(|(a, d, o)| FStmt::LoadAffine(a, d, o))
                .collect(),
            FStmt::StoreAffine(a, s, o) => (*a, *s, *o)
                .shrinks()
                .into_iter()
                .map(|(a, s, o)| FStmt::StoreAffine(a, s, o))
                .collect(),
            FStmt::SelectPtr(c, a, b) => (*c, *a, *b)
                .shrinks()
                .into_iter()
                .map(|(c, a, b)| FStmt::SelectPtr(c, a, b))
                .collect(),
            FStmt::LoadPtr(d, i) => {
                (*d, *i).shrinks().into_iter().map(|(d, i)| FStmt::LoadPtr(d, i)).collect()
            }
            FStmt::StorePtr(s, i) => {
                (*s, *i).shrinks().into_iter().map(|(s, i)| FStmt::StorePtr(s, i)).collect()
            }
            FStmt::Output(s) => s.shrinks().into_iter().map(FStmt::Output).collect(),
            FStmt::Dead(v) => v.shrinks().into_iter().map(FStmt::Dead).collect(),
            FStmt::If(c, k, t, e) => {
                // Offer each child as a whole-node replacement, then
                // recurse on the arms and scalars.
                let mut out: Vec<FStmt> = t.iter().chain(e).cloned().collect();
                out.extend(t.shrinks().into_iter().map(|t| FStmt::If(*c, *k, t, e.clone())));
                out.extend(e.shrinks().into_iter().map(|e| FStmt::If(*c, *k, t.clone(), e)));
                out.extend(
                    (*c, *k).shrinks().into_iter().map(|(c, k)| FStmt::If(c, k, t.clone(), e.clone())),
                );
                out
            }
            FStmt::Loop(n, b) => {
                let mut out: Vec<FStmt> = b.to_vec();
                out.extend(b.shrinks().into_iter().map(|b| FStmt::Loop(*n, b)));
                out.extend(n.shrinks().into_iter().map(|n| FStmt::Loop(n, b.clone())));
                out
            }
            FStmt::DoWhile(n, b) => {
                let mut out: Vec<FStmt> = b.to_vec();
                // A DoWhile simplifies to the plainer top-tested loop.
                out.push(FStmt::Loop(*n, b.clone()));
                out.extend(b.shrinks().into_iter().map(|b| FStmt::DoWhile(*n, b)));
                out.extend(n.shrinks().into_iter().map(|n| FStmt::DoWhile(n, b.clone())));
                out
            }
        }
    }
}

impl Shrink for FuzzCase {
    fn shrinks(&self) -> Vec<FuzzCase> {
        let mut out: Vec<FuzzCase> = self
            .program
            .shrinks()
            .into_iter()
            .map(|program| FuzzCase { program, ..self.clone() })
            .collect();
        if self.threads != 2 {
            out.push(FuzzCase { threads: 2, ..self.clone() });
        }
        if self.part_seed != 0 {
            out.push(FuzzCase { part_seed: 0, ..self.clone() });
        }
        for m in self.mode.shrinks() {
            out.push(FuzzCase { mode: m, ..self.clone() });
        }
        out
    }
}

struct Env {
    pool: Vec<Reg>,
    /// Base address registers, one per plain array.
    bases: Vec<Reg>,
    aff_base: Reg,
    /// The dedicated may-alias pointer register (`SelectPtr` target).
    ptr: Reg,
    /// Stack of live loop-counter registers (innermost last).
    counters: Vec<Reg>,
}

/// Compiles a fuzz program into a verified, critical-edge-split
/// function that returns `pool[0]`.
///
/// # Errors
///
/// Returns the verifier's message if the emitted IR fails verification
/// — by construction that is a generator (or verifier) bug, so the
/// oracle reports it as a finding rather than panicking.
pub fn compile(program: &[FStmt]) -> Result<Function, String> {
    let mut b = FunctionBuilder::new("fuzzed");
    let objs: Vec<_> =
        (0..NUM_ARRAYS).map(|k| b.object(format!("arr{k}"), MEM_CELLS)).collect();
    let aff = b.object("affmem", MEM_CELLS);
    let pool: Vec<Reg> = (0..REG_POOL).map(|_| b.fresh_reg()).collect();
    for (k, &r) in pool.iter().enumerate() {
        b.const_into(r, k as i64 + 1);
    }
    let bases: Vec<Reg> = objs.iter().map(|&o| b.lea(o, 0)).collect();
    let aff_base = b.lea(aff, 0);
    let ptr = b.fresh_reg();
    b.mov_into(ptr, bases[0]);
    let mut env = Env { pool: pool.clone(), bases, aff_base, ptr, counters: Vec::new() };
    emit_block(&mut b, program, &mut env);
    b.ret(Some(pool[0].into()));
    let mut f = b.finish_unverified();
    gmt_ir::split_critical_edges(&mut f);
    gmt_ir::verify(&f).map_err(|e| format!("generated program fails verification: {e:?}"))?;
    Ok(f)
}

fn emit_block(b: &mut FunctionBuilder, stmts: &[FStmt], env: &mut Env) {
    for s in stmts {
        emit_stmt(b, s, env);
    }
}

/// `base + (pool[idx] & 15)` for the given base register.
fn masked_addr(b: &mut FunctionBuilder, base: Reg, idx: Reg) -> Reg {
    let masked = b.bin(BinOp::And, idx, (MEM_CELLS - 1) as i64);
    b.bin(BinOp::Add, base, masked)
}

/// `aff_base(arr) + innermost-counter + (off & 7)` — in bounds since
/// trip counts are at most 4 and arrays hold 16 cells.
fn affine_addr(b: &mut FunctionBuilder, env: &Env, arr: u8, off: u8) -> Reg {
    let base = env.bases[arr as usize % env.bases.len()];
    let base = if arr as u64 & 0x80 != 0 { env.aff_base } else { base };
    let disp = i64::from(off & 7);
    match env.counters.last() {
        Some(&c) => {
            let t = b.bin(BinOp::Add, base, c);
            b.bin(BinOp::Add, t, disp)
        }
        None => b.bin(BinOp::Add, base, disp),
    }
}

fn emit_stmt(b: &mut FunctionBuilder, s: &FStmt, env: &mut Env) {
    let pool = env.pool.clone();
    let p = |k: u8| pool[k as usize % pool.len()];
    let arr_base = |env: &Env, a: u8| env.bases[a as usize % env.bases.len()];
    match s {
        FStmt::Bin(d, op, x, y) => {
            b.bin_into(*op, p(*d), p(*x), p(*y));
        }
        FStmt::Const(d, v) => {
            b.const_into(p(*d), i64::from(*v));
        }
        FStmt::Load(a, d, idx) => {
            let addr = masked_addr(b, arr_base(env, *a), p(*idx));
            b.load_into(p(*d), addr, 0);
        }
        FStmt::Store(a, src, idx) => {
            let addr = masked_addr(b, arr_base(env, *a), p(*idx));
            b.store(addr, 0, p(*src));
        }
        FStmt::LoadAt(a, d, off) => {
            let base = arr_base(env, *a);
            b.load_into(p(*d), base, i64::from(*off & 15));
        }
        FStmt::StoreAt(a, src, off) => {
            let base = arr_base(env, *a);
            b.store(base, i64::from(*off & 15), p(*src));
        }
        FStmt::LoadAffine(a, d, off) => {
            let addr = affine_addr(b, env, *a, *off);
            b.load_into(p(*d), addr, 0);
        }
        FStmt::StoreAffine(a, src, off) => {
            let addr = affine_addr(b, env, *a, *off);
            b.store(addr, 0, p(*src));
        }
        FStmt::SelectPtr(c, x, y) => {
            let then_bb = b.block("sel_t");
            let else_bb = b.block("sel_e");
            let join = b.block("sel_j");
            b.branch(p(*c), then_bb, else_bb);
            b.switch_to(then_bb);
            b.mov_into(env.ptr, arr_base(env, *x));
            b.jump(join);
            b.switch_to(else_bb);
            b.mov_into(env.ptr, arr_base(env, *y));
            b.jump(join);
            b.switch_to(join);
        }
        FStmt::LoadPtr(d, idx) => {
            let addr = masked_addr(b, env.ptr, p(*idx));
            b.load_into(p(*d), addr, 0);
        }
        FStmt::StorePtr(src, idx) => {
            let addr = masked_addr(b, env.ptr, p(*idx));
            b.store(addr, 0, p(*src));
        }
        FStmt::Output(src) => {
            b.output(p(*src));
        }
        FStmt::Dead(v) => {
            let r = b.fresh_reg();
            b.const_into(r, i64::from(*v));
        }
        FStmt::If(c, skew, then_s, else_s) => {
            let masked = b.bin(BinOp::And, p(*c), 7i64);
            let cond = b.bin(BinOp::Lt, masked, i64::from(*skew % 9));
            let then_bb = b.block("then");
            let else_bb = b.block("else");
            let join = b.block("join");
            b.branch(cond, then_bb, else_bb);
            b.switch_to(then_bb);
            emit_block(b, then_s, env);
            b.jump(join);
            b.switch_to(else_bb);
            emit_block(b, else_s, env);
            b.jump(join);
            b.switch_to(join);
        }
        FStmt::Loop(trips, body) => {
            let trips = i64::from(*trips % 5); // 0..=4: zero-trip possible
            let counter = b.fresh_reg();
            let header = b.block("loop_h");
            let body_bb = b.block("loop_b");
            let exit = b.block("loop_x");
            b.const_into(counter, 0);
            b.jump(header);
            b.switch_to(header);
            let c = b.bin(BinOp::Lt, counter, trips);
            b.branch(c, body_bb, exit);
            b.switch_to(body_bb);
            env.counters.push(counter);
            emit_block(b, body, env);
            env.counters.pop();
            b.bin_into(BinOp::Add, counter, counter, 1i64);
            b.jump(header);
            b.switch_to(exit);
        }
        FStmt::DoWhile(trips, body) => {
            let trips = i64::from(*trips % 4 + 1);
            let counter = b.fresh_reg();
            let body_bb = b.block("dw_b");
            let exit = b.block("dw_x");
            b.const_into(counter, 0);
            b.jump(body_bb);
            b.switch_to(body_bb);
            env.counters.push(counter);
            emit_block(b, body, env);
            env.counters.pop();
            b.bin_into(BinOp::Add, counter, counter, 1i64);
            let c = b.bin(BinOp::Lt, counter, trips);
            b.branch(c, body_bb, exit);
            b.switch_to(exit);
        }
    }
}

/// A deterministic pseudo-random instruction-granularity partition:
/// instruction `k` goes to thread `hash(seed, k) % n` (the shape the
/// seeded MTCG modes feed straight to code generation, bypassing the
/// partitioners).
pub fn seeded_partition(f: &Function, n: u32, seed: u64) -> gmt_pdg::Partition {
    let mut p = gmt_pdg::Partition::new(n);
    for (k, i) in f.all_instrs().enumerate() {
        let mut h = seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        p.assign(i, gmt_pdg::ThreadId((h % u64::from(n)) as u32));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile_and_verify() {
        let gen = fprogram_gen();
        let mut rng = TestRng::new(0xF00D);
        for _ in 0..200 {
            let p = gen.sample(&mut rng);
            compile(&p).expect("every generated program verifies");
        }
    }

    #[test]
    fn degenerate_shapes_compile() {
        for p in [
            vec![FStmt::Loop(0, vec![FStmt::Output(0)])], // zero-trip
            vec![FStmt::DoWhile(1, vec![])],              // self-loop block
            vec![FStmt::If(0, 0, vec![], vec![])],        // empty diamond
            vec![FStmt::Dead(7)],                         // dead register
            vec![FStmt::SelectPtr(1, 0, 1), FStmt::StorePtr(2, 3), FStmt::LoadPtr(1, 3)],
        ] {
            compile(&p).expect("degenerate shape verifies");
        }
    }

    #[test]
    fn zero_trip_loop_body_never_runs() {
        let f = compile(&[FStmt::Loop(0, vec![FStmt::Output(0)])]).unwrap();
        let r = gmt_ir::interp::run(&f, &[], &gmt_ir::interp::ExecConfig::default()).unwrap();
        assert!(r.output.is_empty(), "zero-trip body must not execute");
    }

    #[test]
    fn mode_decode_is_total() {
        for b in 0..=255u8 {
            let _ = Mode::from_byte(b);
        }
        assert_eq!(Mode::from_byte(0), Mode::Dswp);
        assert_eq!(Mode::from_byte(5), Mode::SeededCoco);
    }

    #[test]
    fn case_from_seed_is_deterministic() {
        assert_eq!(case_from_seed(42), case_from_seed(42));
        assert_ne!(case_from_seed(42), case_from_seed(43));
    }

    #[test]
    fn shrinks_stay_compilable() {
        let case = case_from_seed(0xC0FFEE);
        for cand in case.shrinks().into_iter().take(64) {
            compile(&cand.program).expect("shrink candidates verify");
        }
    }
}
