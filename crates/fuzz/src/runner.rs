//! The reusable fuzzing driver behind both the `fuzz` bin and
//! `repro --fuzz`: corpus replay, fresh-case generation, shrinking,
//! and corpus persistence, with printing kept to `eprintln`/`println`
//! so callers only decide budgets and exit codes.

use crate::ast::{case_from_seed, FuzzCase, Mode};
use crate::corpus;
use crate::oracle::run_case;
use gmt_testkit::{eval_prop, minimize, splitmix64};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Property evaluations allowed while shrinking one finding (matches
/// the testkit checker's budget).
const MAX_SHRINK_EVALS: u32 = 2048;
/// Default fresh-case budget when neither a case nor a time budget is
/// given.
pub const DEFAULT_CASES: u64 = 1000;
/// Fixed default base seed so runs are deterministic by default.
pub const DEFAULT_SEED: u64 = 0x6D7C_6B5A_4938_2716;

/// Budgets and knobs for one fuzzing run.
pub struct FuzzOptions {
    /// Fresh-case budget; `None` with `secs` set means "until the
    /// clock runs out", `None` alone means [`DEFAULT_CASES`].
    pub cases: Option<u64>,
    /// Wall-clock budget in seconds.
    pub secs: Option<u64>,
    /// Base seed for the fresh-case stream.
    pub seed: u64,
    /// Corpus file (replayed first; findings are appended).
    pub corpus: PathBuf,
    /// Suppress progress lines (the final summary always prints).
    pub quiet: bool,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            cases: None,
            secs: None,
            seed: DEFAULT_SEED,
            corpus: corpus::default_path(),
            quiet: false,
        }
    }
}

/// Counters for one fuzzing run.
pub struct FuzzStats {
    /// Total cases executed (corpus + fresh).
    pub cases: u64,
    /// Corpus entries replayed.
    pub corpus_cases: u64,
    /// Fresh cases generated.
    pub fresh: u64,
    /// Cases the oracle rejected with a typed error (still passes).
    pub rejected: u64,
    /// Failing cases (panics or divergences).
    pub findings: u64,
    /// Cases per generator mode.
    pub by_mode: [u64; Mode::ALL.len()],
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl FuzzStats {
    /// The one-line run summary.
    pub fn summary(&self) -> String {
        format!(
            "fuzz: {} cases ({} corpus + {} fresh), {} typed rejections, {} findings in {:.1}s",
            self.cases,
            self.corpus_cases,
            self.fresh,
            self.rejected,
            self.findings,
            self.elapsed.as_secs_f64()
        )
    }

    /// Per-mode case counts, one token per mode.
    pub fn mode_breakdown(&self) -> String {
        let names: Vec<String> = Mode::ALL
            .iter()
            .zip(self.by_mode.iter())
            .map(|(m, n)| format!("{}:{n}", m.name()))
            .collect();
        names.join(" ")
    }
}

/// The oracle as a testkit property: panics are contained by
/// `eval_prop`, so shrinking can walk through panicking candidates.
fn oracle_prop(case: &FuzzCase) -> Result<(), String> {
    run_case(case).map(|_| ())
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or("finding").trim()
}

/// Runs one seed end to end; on failure shrinks, persists, and prints
/// the repro line. Returns whether the seed failed.
fn run_seed(seed: u64, label_prefix: &str, opts: &FuzzOptions, stats: &mut FuzzStats) -> bool {
    let case = case_from_seed(seed);
    stats.cases += 1;
    stats.by_mode[case.mode() as usize % Mode::ALL.len()] += 1;
    match eval_prop(&|c: &FuzzCase| run_case(c).map(|r| (r, ())), &case) {
        Ok((report, ())) => {
            if report.rejected.is_some() {
                stats.rejected += 1;
            }
            false
        }
        Err(first_err) => {
            stats.findings += 1;
            let (min_case, min_err) = minimize(case, first_err, MAX_SHRINK_EVALS, &oracle_prop);
            let label = first_line(&min_err);
            eprintln!("\n=== FINDING ({label_prefix}seed {seed:#x}) ===");
            eprintln!("error: {min_err}");
            eprintln!("shrunk case ({} stmts): {:#?}", min_case.program.len(), min_case);
            match corpus::append(&opts.corpus, seed, label) {
                Ok(()) => eprintln!("persisted to {}", opts.corpus.display()),
                Err(e) => eprintln!("warning: could not persist seed: {e}"),
            }
            eprintln!(
                "repro: GMT_TESTKIT_SEED={seed:#x} cargo run --release -p gmt-fuzz --bin fuzz"
            );
            true
        }
    }
}

/// Replays the corpus, then fuzzes fresh cases until the case or time
/// budget runs out, printing findings as they appear.
///
/// # Errors
///
/// A corrupted corpus file (an unparsable entry line) — fuzzing does
/// not start, so corpus regressions cannot be dropped silently.
pub fn fuzz_run(opts: &FuzzOptions) -> Result<FuzzStats, String> {
    let mut stats = FuzzStats {
        cases: 0,
        corpus_cases: 0,
        fresh: 0,
        rejected: 0,
        findings: 0,
        by_mode: [0; Mode::ALL.len()],
        elapsed: Duration::ZERO,
    };
    let start = Instant::now();
    let deadline = opts.secs.map(|s| start + Duration::from_secs(s));
    // A time budget alone means "fuzz until the clock runs out".
    let case_budget = match (opts.cases, opts.secs) {
        (Some(n), _) => n,
        (None, Some(_)) => u64::MAX,
        (None, None) => DEFAULT_CASES,
    };

    // 1. Corpus replay: every historical finding, before fresh cases.
    let entries = corpus::load(&opts.corpus)?;
    for entry in &entries {
        run_seed(entry.seed, "corpus ", opts, &mut stats);
    }
    stats.corpus_cases = stats.cases;
    if !opts.quiet && stats.corpus_cases > 0 {
        println!(
            "corpus: {} entr{} replayed",
            stats.corpus_cases,
            if stats.corpus_cases == 1 { "y" } else { "ies" }
        );
    }

    // 2. Fresh cases from the base seed.
    let mut state = opts.seed;
    while stats.fresh < case_budget {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
        let seed = splitmix64(&mut state);
        run_seed(seed, "", opts, &mut stats);
        stats.fresh += 1;
        if !opts.quiet && stats.fresh % 500 == 0 {
            println!(
                "... {} cases ({} rejected, {} findings, {:.1}s)",
                stats.fresh,
                stats.rejected,
                stats.findings,
                start.elapsed().as_secs_f64()
            );
        }
    }
    stats.elapsed = start.elapsed();
    Ok(stats)
}
