//! The replayable seed corpus: one line per failing case seed, kept
//! under `tests/fuzz_corpus/` so every historical finding re-runs
//! before fresh fuzzing (and in the integration suite) forever.
//!
//! Format (`corpus.txt`): `0x<seed in hex>  # <free-form label>`, one
//! entry per line; `#`-only lines and blanks are comments. A corpus
//! entry is *just a seed* — [`crate::ast::case_from_seed`] maps it back
//! to the exact [`crate::ast::FuzzCase`], so replay needs no
//! serialized program format.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One persisted finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The case seed (feed to [`crate::ast::case_from_seed`]).
    pub seed: u64,
    /// Free-form description of what the seed originally triggered.
    pub label: String,
}

/// The in-repo corpus file: `tests/fuzz_corpus/corpus.txt` at the
/// workspace root, overridable with `GMT_FUZZ_CORPUS`.
pub fn default_path() -> PathBuf {
    if let Ok(p) = std::env::var("GMT_FUZZ_CORPUS") {
        return PathBuf::from(p);
    }
    // crates/fuzz/ -> workspace root. Compile-time, so the binary
    // finds the checkout it was built from regardless of cwd.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_corpus/corpus.txt")
}

/// Parses the corpus file. A missing file is an empty corpus; an entry
/// line that does not parse is reported as `Err` (a corrupted corpus
/// should fail loudly, not silently drop regressions).
///
/// # Errors
///
/// Returns the first malformed line with its line number.
pub fn load(path: &Path) -> Result<Vec<CorpusEntry>, String> {
    let Ok(text) = fs::read_to_string(path) else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for (k, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (seed_part, label) = match line.split_once('#') {
            Some((s, l)) => (s.trim(), l.trim().to_string()),
            None => (line, String::new()),
        };
        let seed = parse_seed(seed_part)
            .ok_or_else(|| format!("{}:{}: bad corpus seed {seed_part:?}", path.display(), k + 1))?;
        out.push(CorpusEntry { seed, label });
    }
    Ok(out)
}

/// Appends a finding unless the seed is already recorded. Creates the
/// directory and file (with a format header) on first use.
///
/// # Errors
///
/// Propagates filesystem errors as strings.
pub fn append(path: &Path, seed: u64, label: &str) -> Result<(), String> {
    let existing = load(path).unwrap_or_default();
    if existing.iter().any(|e| e.seed == seed) {
        return Ok(());
    }
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let new = !path.exists();
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    if new {
        writeln!(
            file,
            "# gmt-fuzz corpus: `0x<case seed>  # <label>` per line.\n\
             # Replay one: GMT_TESTKIT_SEED=<seed> cargo run -p gmt-fuzz --bin fuzz\n\
             # All entries re-run before fresh cases on every fuzz run and in\n\
             # tests/fuzz_corpus.rs. Check this file in."
        )
        .map_err(|e| e.to_string())?;
    }
    writeln!(file, "{seed:#018x}  # {label}").map_err(|e| e.to_string())
}

/// Accepts `0x`-prefixed hex or plain decimal.
pub fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_entries() {
        let dir = std::env::temp_dir().join("gmt_fuzz_corpus_test");
        let path = dir.join("corpus.txt");
        let _ = fs::remove_file(&path);
        append(&path, 0xDEAD, "first finding").unwrap();
        append(&path, 0xBEEF, "second").unwrap();
        append(&path, 0xDEAD, "duplicate is dropped").unwrap();
        let got = load(&path).unwrap();
        assert_eq!(
            got,
            vec![
                CorpusEntry { seed: 0xDEAD, label: "first finding".into() },
                CorpusEntry { seed: 0xBEEF, label: "second".into() },
            ]
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage_lines() {
        let dir = std::env::temp_dir().join("gmt_fuzz_corpus_test_bad");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        fs::write(&path, "not-a-seed # hm\n").unwrap();
        assert!(load(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_empty() {
        assert_eq!(load(Path::new("/nonexistent/corpus.txt")).unwrap(), Vec::new());
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("16"), Some(16));
        assert_eq!(parse_seed("zz"), None);
    }
}
