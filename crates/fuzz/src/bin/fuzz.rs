//! The differential fuzzing driver.
//!
//! ```text
//! fuzz [--cases N] [--secs S] [--seed BASE] [--corpus PATH] [--replay SEED] [--quiet]
//! ```
//!
//! Replays every corpus entry first, then generates fresh cases from
//! the base seed until the case or time budget runs out. Each failure
//! is shrunk greedily, persisted to the corpus, and reported with a
//! one-command repro line. Exit status: 0 clean, 1 findings, 2 usage.
//!
//! `GMT_TESTKIT_SEED=<seed>` (or `--replay`) runs exactly that one
//! case and prints its full report — the replay path for corpus
//! entries.

use gmt_fuzz::ast::{case_from_seed, FuzzCase};
use gmt_fuzz::oracle::run_case;
use gmt_fuzz::{corpus, fuzz_run, FuzzOptions};
use gmt_testkit::eval_prop;
use std::path::PathBuf;

struct Options {
    fuzz: FuzzOptions,
    replay: Option<u64>,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: fuzz [--cases N] [--secs S] [--seed BASE] [--corpus PATH] [--replay SEED] [--quiet]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        fuzz: FuzzOptions::default(),
        replay: std::env::var("GMT_TESTKIT_SEED").ok().and_then(|s| corpus::parse_seed(&s)),
    };
    let mut args = std::env::args().skip(1);
    let mut seen: Vec<String> = Vec::new();
    let once = |flag: &str, seen: &mut Vec<String>| {
        if seen.iter().any(|s| s == flag) {
            usage(&format!("duplicate {flag}"));
        }
        seen.push(flag.to_string());
    };
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--cases" => {
                once("--cases", &mut seen);
                let v = value("--cases");
                opts.fuzz.cases =
                    Some(v.parse().unwrap_or_else(|_| usage(&format!("bad --cases {v:?}"))));
            }
            "--secs" => {
                once("--secs", &mut seen);
                let v = value("--secs");
                opts.fuzz.secs =
                    Some(v.parse().unwrap_or_else(|_| usage(&format!("bad --secs {v:?}"))));
            }
            "--seed" => {
                once("--seed", &mut seen);
                let v = value("--seed");
                opts.fuzz.seed = corpus::parse_seed(&v)
                    .unwrap_or_else(|| usage(&format!("bad --seed {v:?}")));
            }
            "--corpus" => {
                once("--corpus", &mut seen);
                opts.fuzz.corpus = PathBuf::from(value("--corpus"));
            }
            "--replay" => {
                once("--replay", &mut seen);
                let v = value("--replay");
                opts.replay = Some(
                    corpus::parse_seed(&v).unwrap_or_else(|| usage(&format!("bad --replay {v:?}"))),
                );
            }
            "--quiet" => {
                once("--quiet", &mut seen);
                opts.fuzz.quiet = true;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();

    // Explicit replay: exactly that case, verbose, no corpus writes.
    if let Some(seed) = opts.replay {
        let case = case_from_seed(seed);
        println!("replaying seed {seed:#x}: {case:#?}");
        match eval_prop(&|c: &FuzzCase| run_case(c), &case) {
            Ok(report) => {
                println!("ok: {report:?}");
                return;
            }
            Err(e) => {
                eprintln!("FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    let stats = match fuzz_run(&opts.fuzz) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!("{}", stats.summary());
    if !opts.fuzz.quiet {
        println!("modes: {}", stats.mode_breakdown());
    }
    if stats.findings > 0 {
        std::process::exit(1);
    }
}
