//! The differential oracle: one [`FuzzCase`] driven through the whole
//! pipeline and every executor, with every observable cross-checked.
//!
//! Per case the oracle runs
//! `compile → verify → profile → PDG → partition → (COCO) → MTCG →
//! verify_mt → executors` and checks:
//!
//! - the decoded and reference **sequential** interpreters agree on
//!   return value, output trace, dynamic counts, edge profile, and
//!   final memory (or return the *same* typed error);
//! - `verify_mt` accepts the generated code at uniform depth 1 and at
//!   the profile-allocated per-queue depths;
//! - the decoded and reference **functional MT** interpreters agree
//!   with the sequential run (return/output/memory) and with each
//!   other (per-thread dynamic counts) at queue capacities 1 and 32,
//!   and the dynamic totals are capacity-invariant;
//! - the **timed** engines — ID-walking reference, decoded with
//!   fast-forward, decoded without — agree on cycles, outputs, and
//!   per-core retired-instruction counts at both uniform and
//!   allocated queue depths, and the fast-forward obeys the
//!   conservation law `engine_steps + skipped_cycles = noskip steps`;
//! - on a deterministic third of the cases, the **trace layer**: a
//!   traced run (small event ring) reports the same cycle count as
//!   the untraced engines (no observer effect), its per-core cycle
//!   attribution sums to the total ([`check_attribution`]), and its
//!   reconstructed critical path conserves cycles exactly
//!   ([`check_critical_path`]);
//! - nothing panics; every rejection is a typed error
//!   ([`PipelineError`] / [`gmt_mtcg::MtcgError`]), which the oracle
//!   records rather than fails.
//!
//! The caller (fuzz bin / regression tests) wraps [`run_case`] in
//! `catch_unwind`, so a panic anywhere in the pipeline is itself a
//! reported finding.

use crate::ast::{compile, seeded_partition, FuzzCase, Mode};
use gmt_core::{verify_mt, verify_mt_uniform, CocoConfig, Parallelized, Parallelizer, Scheduler};
use gmt_ir::interp::{ExecConfig, ExecError, RunResult};
use gmt_ir::interp_mt::{run_mt, run_mt_reference, MtRunResult, QueueConfig};
use gmt_ir::{Function, Profile};
use gmt_sim::{
    check_attribution, check_critical_path, simulate_decoded_opts, simulate_decoded_traced_opts,
    simulate_reference, CritPathSink, MachineConfig, SimOptions, SimResult, TraceAggregator,
};

/// Dynamic-instruction fuel for the functional executors. Generated
/// programs run a few hundred steps; hitting this means livelock.
const FUEL: u64 = 20_000_000;
/// Cycle budget for the timed engines (mem_latency is 141, programs
/// are tiny; hitting this means a scheduling livelock).
const MAX_CYCLES: u64 = 50_000_000;

/// What a case did end to end (when no divergence was found).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CaseReport {
    /// The pipeline rejected the case with a typed error (acceptable;
    /// the sequential cross-check still ran).
    pub rejected: Option<String>,
    /// Queues in the generated program (0 if rejected).
    pub num_queues: u32,
    /// Dynamic instructions of the sequential run.
    pub seq_steps: u64,
    /// Cycles of the timed run at allocated depths (0 if rejected).
    pub cycles: u64,
}

/// Runs the full differential matrix for one case.
///
/// # Errors
///
/// Returns a human-readable divergence description naming the phase
/// and the disagreeing observables. Panics inside the pipeline are
/// *not* caught here — the driver wraps this in `catch_unwind` so the
/// shrinker can walk through panicking candidates.
pub fn run_case(case: &FuzzCase) -> Result<CaseReport, String> {
    let f = compile(&case.program).map_err(|e| format!("[compile] {e}"))?;
    let mut report = CaseReport::default();

    // Phase 1: sequential decoded vs. reference.
    let exec = ExecConfig { max_steps: FUEL };
    let seq = match seq_cross_check(&f, &exec)? {
        Ok(r) => r,
        Err(e) => {
            // Both sequential executors rejected with the same typed
            // error; nothing downstream can run.
            report.rejected = Some(format!("seq: {e:?}"));
            return Ok(report);
        }
    };
    report.seq_steps = seq.counts.total();

    // Phase 2: the pipeline (partition → COCO → MTCG).
    let par = match parallelize(&f, &seq.profile, case) {
        Ok(p) => p,
        Err(rejection) => {
            report.rejected = Some(rejection);
            return Ok(report);
        }
    };
    let out = &par.output;
    report.num_queues = out.num_queues;

    // Phase 3: static protocol validation, uniform + allocated.
    let v1 = verify_mt_uniform(&f, &par.partition, &pdg_of(&f), out, 1);
    if !v1.is_empty() {
        return Err(format!("[verify_mt depth=1] {v1:?}"));
    }
    let va = verify_mt(&f, &par.partition, &pdg_of(&f), out, &par.queue_depths);
    if !va.is_empty() {
        return Err(format!(
            "[verify_mt depths={:?}] {va:?}",
            par.queue_depths
        ));
    }

    // Phase 4: functional MT at capacities 1 and 32.
    let mut totals_by_cap = Vec::new();
    for cap in [1usize, 32] {
        let mt = mt_cross_check(&f, &par, &seq, cap, &exec)?;
        totals_by_cap.push((cap, mt.totals()));
    }
    let (c0, t0) = &totals_by_cap[0];
    for (c, t) in &totals_by_cap[1..] {
        if t.total() != t0.total() {
            return Err(format!(
                "[mt] dynamic totals depend on queue capacity: {} at capacity {c0} vs {} at {c}",
                t0.total(),
                t.total()
            ));
        }
    }

    // Phase 5: timed engines at uniform hot depth and allocated depths.
    let hot = hot_depth(case.mode());
    let uniform = machine_for(out.num_queues, vec![hot]);
    let allocated = machine_for(
        out.num_queues,
        if par.queue_depths.is_empty() { vec![1] } else { par.queue_depths.clone() },
    );
    for (label, machine) in [("uniform", &uniform), ("allocated", &allocated)] {
        let sim = sim_cross_check(&f, &par, &seq, machine, label)?;
        report.cycles = sim.cycles;
    }

    Ok(report)
}

/// Builds the PDG (used twice so the verifier sees the same graph the
/// partitioners did; `Pdg::build` is deterministic).
fn pdg_of(f: &Function) -> gmt_pdg::Pdg {
    gmt_pdg::Pdg::build(f)
}

/// The paper depth hot queues get under each mode's scheduler.
fn hot_depth(mode: Mode) -> usize {
    match mode {
        Mode::Gremio | Mode::GremioCoco => 1,
        _ => 32,
    }
}

/// Runs both sequential interpreters; diverging results are an error,
/// identical typed rejections are passed through as `Ok(Err(e))`.
fn seq_cross_check(
    f: &Function,
    exec: &ExecConfig,
) -> Result<Result<RunResult, ExecError>, String> {
    let dec = gmt_ir::interp::run(f, &[], exec);
    let refr = gmt_ir::interp::run_reference(f, &[], exec);
    match (dec, refr) {
        (Ok(d), Ok(r)) => {
            if d.return_value != r.return_value {
                return Err(format!(
                    "[seq] return value: decoded {:?} vs reference {:?}",
                    d.return_value, r.return_value
                ));
            }
            if d.output != r.output {
                return Err(format!(
                    "[seq] output trace: decoded {:?} vs reference {:?}",
                    d.output, r.output
                ));
            }
            if d.counts != r.counts {
                return Err(format!(
                    "[seq] dynamic counts: decoded {:?} vs reference {:?}",
                    d.counts, r.counts
                ));
            }
            if d.profile != r.profile {
                return Err("[seq] edge profiles diverge".to_string());
            }
            if d.memory.cells() != r.memory.cells() {
                return Err("[seq] final memories diverge".to_string());
            }
            Ok(Ok(d))
        }
        (Err(de), Err(re)) => {
            if err_key(&de) == err_key(&re) {
                Ok(Err(de))
            } else {
                Err(format!("[seq] decoded error {de:?} vs reference error {re:?}"))
            }
        }
        (Ok(_), Err(e)) => Err(format!("[seq] decoded succeeded, reference failed: {e:?}")),
        (Err(e), Ok(_)) => Err(format!("[seq] decoded failed, reference succeeded: {e:?}")),
    }
}

/// Drives the pipeline for the case's mode. `Err` is a *typed*
/// rejection (acceptable); panics propagate to the driver.
fn parallelize(f: &Function, profile: &Profile, case: &FuzzCase) -> Result<Parallelized, String> {
    let mode = case.mode();
    let scheduler = match mode {
        Mode::Dswp | Mode::DswpCoco | Mode::SeededMtcg | Mode::SeededCoco => {
            Scheduler::dswp(case.threads)
        }
        Mode::Gremio | Mode::GremioCoco => Scheduler::gremio(case.threads),
    };
    let mut p = Parallelizer::new(scheduler);
    if matches!(mode, Mode::DswpCoco | Mode::GremioCoco | Mode::SeededCoco) {
        p = p.with_coco(CocoConfig::default());
    }
    match mode {
        Mode::SeededMtcg | Mode::SeededCoco => {
            let pdg = pdg_of(f);
            let partition = seeded_partition(f, case.threads, case.part_seed);
            p.parallelize_with_partition(f, profile, &pdg, partition)
                .map_err(|e| format!("pipeline (seeded): {e:?}"))
        }
        _ => p.parallelize(f, profile).map_err(|e| format!("pipeline: {e:?}")),
    }
}

/// Runs both functional MT interpreters at the given capacity and
/// cross-checks them against each other and the sequential truth.
fn mt_cross_check(
    f: &Function,
    par: &Parallelized,
    seq: &RunResult,
    capacity: usize,
    exec: &ExecConfig,
) -> Result<MtRunResult, String> {
    let qc = QueueConfig {
        num_queues: par.output.num_queues.max(1) as usize,
        capacity,
    };
    let threads = par.threads();
    let dec = run_mt(threads, &[], |_, _| {}, &qc, exec)
        .map_err(|e| format!("[mt cap={capacity}] decoded: {e:?}"))?;
    let refr = run_mt_reference(threads, &[], |_, _| {}, &qc, exec)
        .map_err(|e| format!("[mt cap={capacity}] reference: {e:?}"))?;
    if dec.per_thread != refr.per_thread {
        return Err(format!(
            "[mt cap={capacity}] per-thread counts: decoded {:?} vs reference {:?}",
            dec.per_thread, refr.per_thread
        ));
    }
    if dec.return_value != refr.return_value || dec.output != refr.output {
        return Err(format!("[mt cap={capacity}] decoded and reference observables diverge"));
    }
    if dec.return_value != seq.return_value {
        return Err(format!(
            "[mt cap={capacity}] return value {:?} vs sequential {:?}",
            dec.return_value, seq.return_value
        ));
    }
    if dec.output != seq.output {
        return Err(format!(
            "[mt cap={capacity}] output {:?} vs sequential {:?}",
            dec.output, seq.output
        ));
    }
    // Thread functions carry the same object table as `f`, so the
    // layouts agree cell for cell.
    if dec.memory.cells() != seq.memory.cells() {
        return Err(format!("[mt cap={capacity}] final memory diverges from sequential"));
    }
    let _ = f;
    Ok(dec)
}

/// A machine sized for the generated program's queue file with the
/// fuzzer's cycle budget.
fn machine_for(num_queues: u32, depths: Vec<usize>) -> MachineConfig {
    let mut m = MachineConfig::default().with_queue_depths(depths);
    m.sa.num_queues = num_queues.max(1) as usize;
    m.max_cycles = MAX_CYCLES;
    m
}

/// Runs the three timed engines and checks full agreement plus the
/// fast-forward conservation law.
fn sim_cross_check(
    f: &Function,
    par: &Parallelized,
    seq: &RunResult,
    machine: &MachineConfig,
    label: &str,
) -> Result<SimResult, String> {
    let threads = par.threads();
    let refr = simulate_reference(threads, &[], |_, _| {}, machine)
        .map_err(|e| format!("[sim {label}] reference: {e:?}"))?;
    machine.validate().map_err(|e| format!("[sim {label}] config: {e}"))?;
    let program = gmt_ir::decoded::DecodedProgram::decode(threads)
        .map_err(|e| format!("[sim {label}] decode: {e:?}"))?;
    let ff = simulate_decoded_opts(
        &program,
        &[],
        |_, _| {},
        machine,
        SimOptions { fast_forward: true },
    )
    .map_err(|e| format!("[sim {label}] fast-forward: {e:?}"))?;
    let noskip = simulate_decoded_opts(
        &program,
        &[],
        |_, _| {},
        machine,
        SimOptions { fast_forward: false },
    )
    .map_err(|e| format!("[sim {label}] no-skip: {e:?}"))?;

    for (name, sim) in [("reference", &refr), ("fast-forward", &ff), ("no-skip", &noskip)] {
        if sim.return_value != seq.return_value || sim.output != seq.output {
            return Err(format!(
                "[sim {label}] {name} observables diverge from sequential (ret {:?} vs {:?})",
                sim.return_value, seq.return_value
            ));
        }
    }
    if ff.cycles != refr.cycles || noskip.cycles != refr.cycles {
        return Err(format!(
            "[sim {label}] cycle totals: reference {} / fast-forward {} / no-skip {}",
            refr.cycles, ff.cycles, noskip.cycles
        ));
    }
    let instrs = |s: &SimResult| -> Vec<u64> {
        s.cores.iter().map(gmt_sim::CoreStats::total_instrs).collect()
    };
    if instrs(&ff) != instrs(&refr) || instrs(&noskip) != instrs(&refr) {
        return Err(format!("[sim {label}] per-core instruction counts diverge across engines"));
    }
    if noskip.skipped_cycles != 0 {
        return Err(format!(
            "[sim {label}] no-skip engine reported {} skipped cycles",
            noskip.skipped_cycles
        ));
    }
    if ff.engine_steps + ff.skipped_cycles != noskip.engine_steps {
        return Err(format!(
            "[sim {label}] conservation law broken: {} steps + {} skipped != {} no-skip steps",
            ff.engine_steps, ff.skipped_cycles, noskip.engine_steps
        ));
    }
    // Trace-layer invariants on a deterministic third of the cases
    // (keyed on the sequential step count, so replays hit the same
    // subset): tracing must not perturb timing, and both trace
    // conservation laws must hold on arbitrary generated programs —
    // every per-core attribution sums to the cycle count, and the
    // reconstructed critical path's edges cover the run exactly.
    if seq.counts.total() % 3 == 0 {
        let mut sink = (
            TraceAggregator::new(threads.len(), machine.sa.num_queues, 256),
            CritPathSink::new(&program, machine.sa.num_queues),
        );
        let traced = simulate_decoded_traced_opts(
            &program,
            &[],
            |_, _| {},
            machine,
            &mut sink,
            SimOptions { fast_forward: true },
        )
        .map_err(|e| format!("[sim {label}] traced: {e:?}"))?;
        if traced.cycles != refr.cycles {
            return Err(format!(
                "[sim {label}] observer effect: traced {} cycles vs untraced {}",
                traced.cycles, refr.cycles
            ));
        }
        check_attribution(&sink.0, &traced)
            .map_err(|e| format!("[sim {label}] attribution: {e}"))?;
        check_critical_path(&sink.1, &traced)
            .map_err(|e| format!("[sim {label}] critical path: {e}"))?;
    }
    let _ = f;
    Ok(ff)
}

/// A loose equality key for [`ExecError`]: the variant name only, so
/// decoded and reference paths may differ in diagnostic payloads
/// (instruction ids, deadlock witnesses) but must agree on *what* went
/// wrong.
pub fn err_key(e: &ExecError) -> &'static str {
    match e {
        ExecError::OutOfFuel => "OutOfFuel",
        ExecError::MemoryFault { .. } => "MemoryFault",
        ExecError::CommunicationOutsideMt(_) => "CommunicationOutsideMt",
        ExecError::MissingArguments => "MissingArguments",
        ExecError::Deadlock(_) => "Deadlock",
        ExecError::BadQueue(_) => "BadQueue",
        ExecError::InvalidConfig(_) => "InvalidConfig",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::case_from_seed;

    #[test]
    fn oracle_passes_a_seed_sweep() {
        for seed in 0..24u64 {
            let case = case_from_seed(seed);
            run_case(&case).unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));
        }
    }

    #[test]
    fn err_key_collapses_payloads() {
        assert_eq!(
            err_key(&ExecError::InvalidConfig("a".into())),
            err_key(&ExecError::InvalidConfig("b".into()))
        );
        assert_ne!(err_key(&ExecError::OutOfFuel), err_key(&ExecError::Deadlock(None)));
    }
}
