//! SPEC `300.twolf`: `new_dbox_a` (30% of execution).
//!
//! Incremental wire-length evaluation: for each terminal of the moved
//! cell, fetch its net, recompute the net's bounding span if the
//! terminal was on the boundary, and accumulate the cost delta.
//! Branch-dense integer code with data-dependent control — the shape
//! that gives twolf its irregular control profile.

use crate::kernels::finish;
use crate::{fill_signed, Rng, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

const TERMS: u64 = 2048;
const NETS: u64 = 256;
const OBJ_NET_OF: ObjectId = ObjectId(0);
const OBJ_TERM_X: ObjectId = ObjectId(1);
const OBJ_NET_MIN: ObjectId = ObjectId(2);
const OBJ_NET_MAX: ObjectId = ObjectId(3);

fn init(layout: &MemoryLayout, mem: &mut Memory) {
    let nb = layout.base(OBJ_NET_OF) as usize;
    let xb = layout.base(OBJ_TERM_X) as usize;
    let mnb = layout.base(OBJ_NET_MIN) as usize;
    let mxb = layout.base(OBJ_NET_MAX) as usize;
    let cells = mem.cells_mut();
    let mut rng = Rng::new(0x2800);
    for k in 0..TERMS as usize {
        cells[nb + k] = rng.below(NETS) as i64;
    }
    fill_signed(&mut cells[xb..xb + TERMS as usize], 0x71, 500);
    for k in 0..NETS as usize {
        cells[mnb + k] = -400;
        cells[mxb + k] = 400;
    }
}

/// Builds the `new_dbox_a` workload. Arguments: `(nterms, delta)`.
pub fn new_dbox_a() -> Workload {
    let mut b = FunctionBuilder::new("new_dbox_a");
    let nterms = b.param();
    let delta = b.param();
    let net_of = b.object("term_net", TERMS);
    let term_x = b.object("term_x", TERMS);
    let net_min = b.object("net_min", NETS);
    let net_max = b.object("net_max", NETS);
    debug_assert_eq!(net_of, OBJ_NET_OF);
    debug_assert_eq!(term_x, OBJ_TERM_X);
    debug_assert_eq!(net_min, OBJ_NET_MIN);
    debug_assert_eq!(net_max, OBJ_NET_MAX);

    let t = b.fresh_reg();
    let cost = b.fresh_reg();

    let header = b.block("header");
    let body = b.block("body");
    let moved_right = b.block("moved_right");
    let grow_max = b.block("grow_max");
    let no_grow_r = b.block("no_grow_r");
    let moved_left = b.block("moved_left");
    let grow_min = b.block("grow_min");
    let no_grow_l = b.block("no_grow_l");
    let accum = b.block("accum");
    let exit = b.block("exit");

    b.const_into(t, 0);
    b.const_into(cost, 0);
    b.jump(header);

    b.switch_to(header);
    let c = b.bin(BinOp::Lt, t, nterms);
    b.branch(c, body, exit);

    b.switch_to(body);
    let pn = b.lea(net_of, 0);
    let pne = b.bin(BinOp::Add, pn, t);
    let net = b.load(pne, 0);
    let px = b.lea(term_x, 0);
    let pxe = b.bin(BinOp::Add, px, t);
    let x = b.load(pxe, 0);
    let newx = b.bin(BinOp::Add, x, delta);
    // Direction hammock.
    let right = b.bin(BinOp::Lt, 0i64, delta);
    b.branch(right, moved_right, moved_left);

    b.switch_to(moved_right);
    let pmx = b.lea(net_max, 0);
    let pmxe = b.bin(BinOp::Add, pmx, net);
    let mx = b.load(pmxe, 0);
    let beyond = b.bin(BinOp::Lt, mx, newx);
    b.branch(beyond, grow_max, no_grow_r);

    b.switch_to(grow_max);
    b.store(pmxe, 0, newx);
    let growth = b.bin(BinOp::Sub, newx, mx);
    b.bin_into(BinOp::Add, cost, cost, growth);
    b.jump(accum);
    b.switch_to(no_grow_r);
    b.jump(accum);

    b.switch_to(moved_left);
    let pmn = b.lea(net_min, 0);
    let pmne = b.bin(BinOp::Add, pmn, net);
    let mn = b.load(pmne, 0);
    let before = b.bin(BinOp::Lt, newx, mn);
    b.branch(before, grow_min, no_grow_l);

    b.switch_to(grow_min);
    b.store(pmne, 0, newx);
    let shrink = b.bin(BinOp::Sub, mn, newx);
    b.bin_into(BinOp::Add, cost, cost, shrink);
    b.jump(accum);
    b.switch_to(no_grow_l);
    b.jump(accum);

    b.switch_to(accum);
    // Half-perimeter contribution of the (possibly updated) net.
    let pmx2 = b.lea(net_max, 0);
    let pmx2e = b.bin(BinOp::Add, pmx2, net);
    let mx2 = b.load(pmx2e, 0);
    let pmn2 = b.lea(net_min, 0);
    let pmn2e = b.bin(BinOp::Add, pmn2, net);
    let mn2 = b.load(pmn2e, 0);
    let span = b.bin(BinOp::Sub, mx2, mn2);
    let scaled = b.bin(BinOp::Shr, span, 6i64);
    b.bin_into(BinOp::Add, cost, cost, scaled);
    b.bin_into(BinOp::Add, t, t, 1i64);
    b.jump(header);

    b.switch_to(exit);
    b.output(cost);
    b.ret(Some(cost.into()));

    Workload {
        name: "new_dbox_a",
        benchmark: "300.twolf",
        suite: "SPEC-CPU",
        exec_pct: 30,
        function: finish(b),
        train_args: vec![160, 9],
        ref_args: vec![TERMS as i64, 9],
        init,
    }
}
