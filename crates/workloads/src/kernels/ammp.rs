//! SPEC `188.ammp`: `mm_fv_update_nonbon` (79% of execution).
//!
//! The non-bonded force update: for every atom pair on the neighbor
//! list, compute the squared distance, test against the cutoff, and if
//! inside compute Lennard-Jones-style force terms (FP-heavy) and
//! scatter force updates to *both* atoms. Reproduced in fixed point
//! with the same shape: neighbor-list indirection, a cutoff hammock,
//! an expensive FP-classified tail, and dual force scatters.

use crate::kernels::finish;
use crate::{fill_signed, Rng, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

const ATOMS: u64 = 512;
const PAIRS: u64 = 4096;
const OBJ_PAIR_A: ObjectId = ObjectId(0);
const OBJ_PAIR_B: ObjectId = ObjectId(1);
const OBJ_POS: ObjectId = ObjectId(2);
const OBJ_FORCE: ObjectId = ObjectId(3);

fn init(layout: &MemoryLayout, mem: &mut Memory) {
    let ab = layout.base(OBJ_PAIR_A) as usize;
    let bb = layout.base(OBJ_PAIR_B) as usize;
    let pb = layout.base(OBJ_POS) as usize;
    let cells = mem.cells_mut();
    let mut rng = Rng::new(0xA117);
    for k in 0..PAIRS as usize {
        cells[ab + k] = rng.below(ATOMS) as i64;
        cells[bb + k] = rng.below(ATOMS) as i64;
    }
    fill_signed(&mut cells[pb..pb + ATOMS as usize], 0xA70, 30);
}

/// Builds the `mm_fv_update_nonbon` workload. Arguments: `(npairs, cutoff2)`.
pub fn mm_fv_update_nonbon() -> Workload {
    let mut b = FunctionBuilder::new("mm_fv_update_nonbon");
    let npairs = b.param();
    let cutoff2 = b.param();
    let pair_a = b.object("pair_a", PAIRS);
    let pair_b = b.object("pair_b", PAIRS);
    let pos = b.object("atom_pos", ATOMS);
    let force = b.object("atom_force", ATOMS);
    debug_assert_eq!(pair_a, OBJ_PAIR_A);
    debug_assert_eq!(pair_b, OBJ_PAIR_B);
    debug_assert_eq!(pos, OBJ_POS);
    debug_assert_eq!(force, OBJ_FORCE);

    let k = b.fresh_reg();
    let vtot = b.fresh_reg();

    let header = b.block("header");
    let body = b.block("body");
    let inside = b.block("inside_cutoff");
    let outside = b.block("outside_cutoff");
    let next = b.block("next");
    let exit = b.block("exit");

    b.const_into(k, 0);
    b.const_into(vtot, 0);
    b.jump(header);

    b.switch_to(header);
    let c = b.bin(BinOp::Lt, k, npairs);
    b.branch(c, body, exit);

    b.switch_to(body);
    let pa = b.lea(pair_a, 0);
    let pae = b.bin(BinOp::Add, pa, k);
    let ai = b.load(pae, 0);
    let pb_ = b.lea(pair_b, 0);
    let pbe = b.bin(BinOp::Add, pb_, k);
    let bi = b.load(pbe, 0);
    let pp = b.lea(pos, 0);
    let ppa = b.bin(BinOp::Add, pp, ai);
    let xa = b.load(ppa, 0);
    let ppb = b.bin(BinOp::Add, pp, bi);
    let xb = b.load(ppb, 0);
    let dx = b.bin(BinOp::Sub, xa, xb);
    let r2 = b.bin(BinOp::FMul, dx, dx);
    let in_range = b.bin(BinOp::Lt, r2, cutoff2);
    b.branch(in_range, inside, outside);

    b.switch_to(inside);
    // LJ-style terms in fixed point: r2+1 avoids the singularity.
    let r2s = b.bin(BinOp::Add, r2, 1i64);
    let inv = b.bin(BinOp::FDiv, 1_000_000i64, r2s);
    let inv2 = b.bin(BinOp::FMul, inv, inv);
    let inv3 = b.bin(BinOp::FMul, inv2, inv);
    let rep = b.bin(BinOp::Shr, inv3, 20i64);
    let att = b.bin(BinOp::Shr, inv2, 10i64);
    let fmag = b.bin(BinOp::FSub, rep, att);
    b.bin_into(BinOp::Add, vtot, vtot, fmag);
    // Scatter to both atoms' forces.
    let pf = b.lea(force, 0);
    let pfa = b.bin(BinOp::Add, pf, ai);
    let fa = b.load(pfa, 0);
    let fa2 = b.bin(BinOp::FAdd, fa, fmag);
    b.store(pfa, 0, fa2);
    let pfb = b.bin(BinOp::Add, pf, bi);
    let fb = b.load(pfb, 0);
    let fb2 = b.bin(BinOp::FSub, fb, fmag);
    b.store(pfb, 0, fb2);
    b.jump(next);

    b.switch_to(outside);
    b.jump(next);

    b.switch_to(next);
    b.bin_into(BinOp::Add, k, k, 1i64);
    b.jump(header);

    b.switch_to(exit);
    // Fold in a couple of force cells as the oracle checksum.
    let pf2 = b.lea(force, 0);
    let f0 = b.load(pf2, 0);
    let f1 = b.load(pf2, 1);
    let chk0 = b.bin(BinOp::Add, vtot, f0);
    let chk = b.bin(BinOp::Add, chk0, f1);
    b.output(chk);
    b.ret(Some(chk.into()));

    Workload {
        name: "mm_fv_update_nonbon",
        benchmark: "188.ammp",
        suite: "SPEC-CPU",
        exec_pct: 79,
        function: finish(b),
        train_args: vec![256, 900],
        ref_args: vec![PAIRS as i64, 900],
        init,
    }
}
