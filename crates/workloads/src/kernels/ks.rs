//! Pointer-Intensive `ks`: `FindMaxGpAndSwap` (100% of execution).
//!
//! The original walks the gain lists of a Kernighan–Schweikert graph
//! partitioner: an inner scan finds the module with maximum gain, then
//! a second inner loop applies the swap and updates neighbor gains.
//! The structure reproduced here is the paper's headline COCO case:
//! the max-scan loop produces *live-outs* (`maxgp`, `maxi`) consumed
//! only after the loop — with baseline MTCG the consumer thread
//! replicates the whole scan loop just to receive the value each
//! iteration (Figure 4), and COCO's min-cut sinks the communication
//! below the loop, deleting the loop from the consumer thread (the
//! 73.7% reduction for ks-GREMIO).

use crate::kernels::finish;
use crate::{fill_signed, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

const N: u64 = 512;
const OBJ_GAIN: ObjectId = ObjectId(0);
const OBJ_COST: ObjectId = ObjectId(1);

fn init(layout: &MemoryLayout, mem: &mut Memory) {
    let gb = layout.base(OBJ_GAIN) as usize;
    let cb = layout.base(OBJ_COST) as usize;
    let cells = mem.cells_mut();
    fill_signed(&mut cells[gb..gb + N as usize], 0xAB1E, 1000);
    fill_signed(&mut cells[cb..cb + N as usize], 0xF00D, 50);
}

/// Builds the `FindMaxGpAndSwap` workload. Arguments: `(passes, n)`.
pub fn find_max_gp_and_swap() -> Workload {
    let mut b = FunctionBuilder::new("FindMaxGpAndSwap");
    let passes = b.param();
    let n = b.param();
    let gain = b.object("gain", N);
    let cost = b.object("cost", N);
    debug_assert_eq!(gain, OBJ_GAIN);
    debug_assert_eq!(cost, OBJ_COST);

    let pass = b.fresh_reg();
    let total = b.fresh_reg();
    let maxgp = b.fresh_reg();
    let maxi = b.fresh_reg();
    let i = b.fresh_reg();
    let j = b.fresh_reg();

    let pass_h = b.block("pass_header");
    let scan_init = b.block("scan_init");
    let scan_h = b.block("scan_header");
    let scan_body = b.block("scan_body");
    let scan_upd = b.block("scan_update");
    let scan_next = b.block("scan_next");
    let upd_init = b.block("update_init");
    let upd_h = b.block("update_header");
    let upd_body = b.block("update_body");
    let pass_tail = b.block("pass_tail");
    let exit = b.block("exit");

    b.const_into(pass, 0);
    b.const_into(total, 0);
    b.jump(pass_h);

    b.switch_to(pass_h);
    let cp = b.bin(BinOp::Lt, pass, passes);
    b.branch(cp, scan_init, exit);

    // -- scan loop: find max gain and its index (live-outs).
    b.switch_to(scan_init);
    b.const_into(maxgp, i64::MIN / 2);
    b.const_into(maxi, 0);
    b.const_into(i, 0);
    b.jump(scan_h);

    b.switch_to(scan_h);
    let cs = b.bin(BinOp::Lt, i, n);
    b.branch(cs, scan_body, upd_init);

    b.switch_to(scan_body);
    let pg = b.lea(gain, 0);
    let pge = b.bin(BinOp::Add, pg, i);
    let g = b.load(pge, 0);
    let better = b.bin(BinOp::Lt, maxgp, g);
    b.branch(better, scan_upd, scan_next);

    b.switch_to(scan_upd);
    b.mov_into(maxgp, g);
    b.mov_into(maxi, i);
    b.jump(scan_next);

    b.switch_to(scan_next);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(scan_h);

    // -- swap/update loop: apply the chosen move to every gain.
    b.switch_to(upd_init);
    b.const_into(j, 0);
    b.jump(upd_h);

    b.switch_to(upd_h);
    let cu = b.bin(BinOp::Lt, j, n);
    b.branch(cu, upd_body, pass_tail);

    b.switch_to(upd_body);
    let pc = b.lea(cost, 0);
    let pce = b.bin(BinOp::Add, pc, j);
    let cst = b.load(pce, 0);
    // delta(maxi, j): a cheap mixing function of the chosen index.
    let mix = b.bin(BinOp::Xor, maxi, j);
    let mix7 = b.bin(BinOp::And, mix, 7i64);
    let d = b.bin(BinOp::Sub, cst, mix7);
    let pg2 = b.lea(gain, 0);
    let pg2e = b.bin(BinOp::Add, pg2, j);
    let old = b.load(pg2e, 0);
    let newg = b.bin(BinOp::Add, old, d);
    b.store(pg2e, 0, newg);
    b.bin_into(BinOp::Add, j, j, 1i64);
    b.jump(upd_h);

    b.switch_to(pass_tail);
    // Consume the scan live-outs after the loop.
    b.bin_into(BinOp::Add, total, total, maxgp);
    let scaled = b.bin(BinOp::Mul, maxi, 3i64);
    b.bin_into(BinOp::Add, total, total, scaled);
    b.bin_into(BinOp::Add, pass, pass, 1i64);
    b.jump(pass_h);

    b.switch_to(exit);
    b.output(total);
    b.ret(Some(total.into()));

    Workload {
        name: "FindMaxGpAndSwap",
        benchmark: "ks",
        suite: "Pointer-Intensive",
        exec_pct: 100,
        function: finish(b),
        train_args: vec![6, 64],
        ref_args: vec![24, 512],
        init,
    }
}
