//! SPEC `458.sjeng`: `std_eval` (26% of execution).
//!
//! Chess positional evaluation: a sweep over the 64 board squares with
//! a piece-type dispatch (a chain of compares standing in for the
//! original's `switch`), per-piece positional table lookups, pawn
//! structure tests reading neighbor files, and a material/positional
//! score accumulator. Control-dense integer code with table loads.

use crate::kernels::finish;
use crate::{fill_signed, Rng, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

const SQUARES: u64 = 64;
const OBJ_BOARD: ObjectId = ObjectId(0);
const OBJ_PAWN_TAB: ObjectId = ObjectId(1);
const OBJ_KNIGHT_TAB: ObjectId = ObjectId(2);
const OBJ_FILE_COUNT: ObjectId = ObjectId(3);

fn init(layout: &MemoryLayout, mem: &mut Memory) {
    let bb = layout.base(OBJ_BOARD) as usize;
    let pt = layout.base(OBJ_PAWN_TAB) as usize;
    let nt = layout.base(OBJ_KNIGHT_TAB) as usize;
    let cells = mem.cells_mut();
    let mut rng = Rng::new(0x53E6);
    // Pieces 0..6 (0 = empty, 1 = pawn, 2 = knight, 3+ = heavy).
    for k in 0..SQUARES as usize {
        cells[bb + k] = rng.below(6) as i64;
    }
    fill_signed(&mut cells[pt..pt + SQUARES as usize], 0x9A, 30);
    fill_signed(&mut cells[nt..nt + SQUARES as usize], 0x9B, 40);
}

/// Builds the `std_eval` workload. Arguments: `(evals,)` — number of
/// positions evaluated (the original is called once per node searched).
pub fn std_eval() -> Workload {
    let mut b = FunctionBuilder::new("std_eval");
    let evals = b.param();
    let board = b.object("board", SQUARES);
    let pawn_tab = b.object("pawn_pos_tab", SQUARES);
    let knight_tab = b.object("knight_pos_tab", SQUARES);
    let file_count = b.object("pawn_file_count", 8);
    debug_assert_eq!(board, OBJ_BOARD);
    debug_assert_eq!(pawn_tab, OBJ_PAWN_TAB);
    debug_assert_eq!(knight_tab, OBJ_KNIGHT_TAB);
    debug_assert_eq!(file_count, OBJ_FILE_COUNT);

    let e = b.fresh_reg();
    let score = b.fresh_reg();
    let sq = b.fresh_reg();

    let eval_h = b.block("eval_header");
    let eval_body = b.block("eval_body");
    let sq_h = b.block("sq_header");
    let sq_body = b.block("sq_body");
    let is_pawn = b.block("is_pawn");
    let doubled = b.block("doubled_pawn");
    let not_doubled = b.block("not_doubled");
    let not_pawn = b.block("not_pawn");
    let is_knight = b.block("is_knight");
    let heavy = b.block("heavy_piece");
    let sq_next = b.block("sq_next");
    let eval_tail = b.block("eval_tail");
    let exit = b.block("exit");

    b.const_into(e, 0);
    b.const_into(score, 0);
    b.jump(eval_h);

    b.switch_to(eval_h);
    let ce = b.bin(BinOp::Lt, e, evals);
    b.branch(ce, eval_body, exit);

    b.switch_to(eval_body);
    b.const_into(sq, 0);
    b.jump(sq_h);

    b.switch_to(sq_h);
    let cs = b.bin(BinOp::Lt, sq, SQUARES as i64);
    b.branch(cs, sq_body, eval_tail);

    b.switch_to(sq_body);
    let pb = b.lea(board, 0);
    let pbe = b.bin(BinOp::Add, pb, sq);
    let piece = b.load(pbe, 0);
    let pawn = b.bin(BinOp::Eq, piece, 1i64);
    b.branch(pawn, is_pawn, not_pawn);

    // Pawn: positional value + doubled-pawn penalty via file counts.
    b.switch_to(is_pawn);
    let pt = b.lea(pawn_tab, 0);
    let pte = b.bin(BinOp::Add, pt, sq);
    let pv = b.load(pte, 0);
    b.bin_into(BinOp::Add, score, score, pv);
    let file = b.bin(BinOp::And, sq, 7i64);
    let pf = b.lea(file_count, 0);
    let pfe = b.bin(BinOp::Add, pf, file);
    let fc = b.load(pfe, 0);
    let fc2 = b.bin(BinOp::Add, fc, 1i64);
    b.store(pfe, 0, fc2);
    let dbl = b.bin(BinOp::Lt, 1i64, fc2);
    b.branch(dbl, doubled, not_doubled);

    b.switch_to(doubled);
    b.bin_into(BinOp::Sub, score, score, 12i64);
    b.jump(sq_next);
    b.switch_to(not_doubled);
    b.jump(sq_next);

    b.switch_to(not_pawn);
    let knight = b.bin(BinOp::Eq, piece, 2i64);
    b.branch(knight, is_knight, heavy);

    b.switch_to(is_knight);
    let nt = b.lea(knight_tab, 0);
    let nte = b.bin(BinOp::Add, nt, sq);
    let nv = b.load(nte, 0);
    b.bin_into(BinOp::Add, score, score, nv);
    b.jump(sq_next);

    b.switch_to(heavy);
    // Heavy pieces and empty squares: material-weight contribution.
    let mat = b.bin(BinOp::Mul, piece, 9i64);
    b.bin_into(BinOp::Add, score, score, mat);
    b.jump(sq_next);

    b.switch_to(sq_next);
    b.bin_into(BinOp::Add, sq, sq, 1i64);
    b.jump(sq_h);

    b.switch_to(eval_tail);
    // Perturb the board so successive evaluations differ (the search
    // mutates the position between calls).
    let pb2 = b.lea(board, 0);
    let slot = b.bin(BinOp::And, e, 63i64);
    let pslot = b.bin(BinOp::Add, pb2, slot);
    let old = b.load(pslot, 0);
    let rotated = b.bin(BinOp::Add, old, 1i64);
    let wrapped = b.bin(BinOp::Rem, rotated, 6i64);
    b.store(pslot, 0, wrapped);
    b.bin_into(BinOp::Add, e, e, 1i64);
    b.jump(eval_h);

    b.switch_to(exit);
    b.output(score);
    b.ret(Some(score.into()));

    Workload {
        name: "std_eval",
        benchmark: "458.sjeng",
        suite: "SPEC-CPU",
        exec_pct: 26,
        function: finish(b),
        train_args: vec![24],
        ref_args: vec![256],
        init,
    }
}
