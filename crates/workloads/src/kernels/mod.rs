//! The kernel builders, one module per Figure 6(b) benchmark.

pub mod adpcm;
pub mod ammp;
pub mod equake;
pub mod gromacs;
pub mod ks;
pub mod mcf;
pub mod mesa;
pub mod mpeg2;
pub mod sjeng;
pub mod twolf;

use gmt_ir::{Function, FunctionBuilder};

/// Finishes a kernel: verify, then split critical edges so COCO can
/// place communication on any CFG arc.
pub(crate) fn finish(b: FunctionBuilder) -> Function {
    let mut f = b.finish().expect("kernel must verify");
    gmt_ir::split_critical_edges(&mut f);
    gmt_ir::verify(&f).expect("still verifies after edge splitting");
    f
}
