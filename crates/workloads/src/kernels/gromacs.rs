//! SPEC `435.gromacs`: `inl1130` (75% of execution).
//!
//! The water–water non-bonded inner loop: for each neighbor j, load
//! the j-water's coordinates, compute the 3×3 inter-atom distances,
//! evaluate reciprocal-distance interactions (FP-heavy), accumulate
//! potential, and scatter forces back to the j-water's force array.
//!
//! The paper's standout result here is *cache capacity*: DSWP reached
//! 2.44× because splitting the loop across two cores "effectively used
//! the doubled L2 cache capacity (the cores have private L2)". This
//! kernel preserves that mechanism: the coordinate tables and the
//! force/interaction tables are each ~192 KB — together they exceed
//! one 256 KB private L2, but each half fits comfortably, so a
//! pipeline that reads coordinates in one stage and touches
//! force/interaction tables in the other doubles the effective cache.

use crate::kernels::finish;
use crate::{fill_below, fill_signed, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

/// 12288 cells = 96 KB of coordinates (and of neighbor indices, force
/// accumulators, and the interaction table below). The coordinate-side
/// tables (~192 KB) and the force-side tables (~192 KB) each fit one
/// 256 KB private L2 but together overflow it — the capacity cliff the
/// DSWP split crosses.
const COORDS: u64 = 12288;
/// Interaction-table cells.
const FTAB: u64 = 12288;
const PAIRS: u64 = 12288;
const OBJ_JLIST: ObjectId = ObjectId(0);
const OBJ_POS: ObjectId = ObjectId(1);
const OBJ_FTAB: ObjectId = ObjectId(2);
const OBJ_FORCE: ObjectId = ObjectId(3);

fn init(layout: &MemoryLayout, mem: &mut Memory) {
    let jb = layout.base(OBJ_JLIST) as usize;
    let pb = layout.base(OBJ_POS) as usize;
    let tb = layout.base(OBJ_FTAB) as usize;
    let cells = mem.cells_mut();
    fill_below(&mut cells[jb..jb + PAIRS as usize], 0x960, COORDS - 3);
    fill_signed(&mut cells[pb..pb + COORDS as usize], 0x961, 100);
    fill_signed(&mut cells[tb..tb + FTAB as usize], 0x962, 50);
}

/// Builds the `inl1130` workload. Arguments: `(npairs,)`.
pub fn inl1130() -> Workload {
    let mut b = FunctionBuilder::new("inl1130");
    let npairs = b.param();
    let jlist = b.object("jjnr", PAIRS);
    let pos = b.object("pos", COORDS);
    let ftab = b.object("VFtab", FTAB);
    let force = b.object("faction", COORDS);
    debug_assert_eq!(jlist, OBJ_JLIST);
    debug_assert_eq!(pos, OBJ_POS);
    debug_assert_eq!(ftab, OBJ_FTAB);
    debug_assert_eq!(force, OBJ_FORCE);

    let k = b.fresh_reg();
    let vtot = b.fresh_reg();
    // The i-water's three "atoms" (fixed for the whole call).
    let ix0 = b.fresh_reg();
    let ix1 = b.fresh_reg();
    let ix2 = b.fresh_reg();

    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");

    b.const_into(k, 0);
    b.const_into(vtot, 0);
    b.const_into(ix0, 13);
    b.const_into(ix1, -7);
    b.const_into(ix2, 29);
    b.jump(header);

    b.switch_to(header);
    let c = b.bin(BinOp::Lt, k, npairs);
    b.branch(c, body, exit);

    b.switch_to(body);
    // Stage 1: gather the j-water coordinates (coordinate table).
    let pj = b.lea(jlist, 0);
    let pje = b.bin(BinOp::Add, pj, k);
    let j = b.load(pje, 0);
    let pp = b.lea(pos, 0);
    let pp0 = b.bin(BinOp::Add, pp, j);
    let jx0 = b.load(pp0, 0);
    let jx1 = b.load(pp0, 1);
    let jx2 = b.load(pp0, 2);
    // 3x3 distance terms (one coordinate dimension, fixed point).
    let mut rsum = b.const_(0);
    for &ix in &[ix0, ix1, ix2] {
        for &jx in &[jx0, jx1, jx2] {
            let d = b.bin(BinOp::Sub, ix, jx);
            let d2 = b.bin(BinOp::FMul, d, d);
            rsum = b.bin(BinOp::FAdd, rsum, d2);
        }
    }
    // Stage 2: interaction via the force table (second table) plus a
    // reciprocal surrogate, then scatter forces.
    let r2c = b.bin(BinOp::Add, rsum, 1i64);
    let rinv = b.bin(BinOp::FDiv, 1_000_000i64, r2c);
    let idx = b.bin(BinOp::And, rsum, (FTAB - 1) as i64);
    let pt = b.lea(ftab, 0);
    let pte = b.bin(BinOp::Add, pt, idx);
    let tabv = b.load(pte, 0);
    let vterm = b.bin(BinOp::FMul, tabv, rinv);
    b.bin_into(BinOp::FAdd, vtot, vtot, vterm);
    let pf = b.lea(force, 0);
    let pfj = b.bin(BinOp::Add, pf, j);
    let fj = b.load(pfj, 0);
    let fj2 = b.bin(BinOp::FAdd, fj, vterm);
    b.store(pfj, 0, fj2);
    b.bin_into(BinOp::Add, k, k, 1i64);
    b.jump(header);

    b.switch_to(exit);
    b.output(vtot);
    b.ret(Some(vtot.into()));

    Workload {
        name: "inl1130",
        benchmark: "435.gromacs",
        suite: "SPEC-CPU",
        exec_pct: 75,
        function: finish(b),
        train_args: vec![2048],
        ref_args: vec![PAIRS as i64],
        init,
    }
}
