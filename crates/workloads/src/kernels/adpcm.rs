//! MediaBench ADPCM: `adpcm_decoder` and `adpcm_coder`.
//!
//! Both are single sequential loops over samples with two loop-carried
//! scalar recurrences (`valpred` — the predicted value — and `index` —
//! the quantizer step index), step/index table lookups, a sign hammock,
//! and saturation clamps. The decoder consumes 4-bit deltas and emits
//! samples; the coder consumes samples and emits deltas. This carries
//! exactly the structure that made adpcm a DSWP/GREMIO staple: a tight
//! recurrence plus per-iteration side computation.

use crate::kernels::finish;
use crate::{fill_below, fill_signed, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

const N: u64 = 4096;
const TRAIN: i64 = 256;
const REF: i64 = 4096;

/// Object indices (declaration order below).
const OBJ_INPUT: ObjectId = ObjectId(0);
const OBJ_OUTPUT: ObjectId = ObjectId(1);
const OBJ_STEPTAB: ObjectId = ObjectId(2);
const OBJ_INDEXTAB: ObjectId = ObjectId(3);

fn init_tables(layout: &MemoryLayout, mem: &mut Memory, input_amp: bool) {
    let ib = layout.base(OBJ_INPUT) as usize;
    let sb = layout.base(OBJ_STEPTAB) as usize;
    let xb = layout.base(OBJ_INDEXTAB) as usize;
    let cells = mem.cells_mut();
    if input_amp {
        fill_signed(&mut cells[ib..ib + N as usize], 0x5EED, 6000);
    } else {
        fill_below(&mut cells[ib..ib + N as usize], 0x5EED, 16);
    }
    // The 89-entry step-size table (geometric growth like the real one).
    let mut step = 7i64;
    for k in 0..89 {
        cells[sb + k] = step;
        step += step / 10 + 1;
    }
    // The ADPCM index-adjustment table.
    let idx = [-1i64, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];
    for (k, v) in idx.iter().enumerate() {
        cells[xb + k] = *v;
    }
}

fn init_dec(layout: &MemoryLayout, mem: &mut Memory) {
    init_tables(layout, mem, false);
}

fn init_enc(layout: &MemoryLayout, mem: &mut Memory) {
    init_tables(layout, mem, true);
}

/// `adpcm_decoder` (100% of adpcmdec execution).
pub fn decoder() -> Workload {
    let mut b = FunctionBuilder::new("adpcm_decoder");
    let n = b.param();
    let input = b.object("indata", N);
    let out = b.object("outdata", N);
    let steptab = b.object("stepsizeTable", 89);
    let indextab = b.object("indexTable", 16);
    debug_assert_eq!(input, OBJ_INPUT);
    debug_assert_eq!(out, OBJ_OUTPUT);
    debug_assert_eq!(steptab, OBJ_STEPTAB);
    debug_assert_eq!(indextab, OBJ_INDEXTAB);

    let i = b.fresh_reg();
    let valpred = b.fresh_reg();
    let index = b.fresh_reg();

    let header = b.block("header");
    let body = b.block("body");
    let neg = b.block("sign_neg");
    let pos = b.block("sign_pos");
    let join = b.block("sign_join");
    let exit = b.block("exit");

    b.const_into(i, 0);
    b.const_into(valpred, 0);
    b.const_into(index, 0);
    b.jump(header);

    b.switch_to(header);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, exit);

    b.switch_to(body);
    let pin = b.lea(input, 0);
    let pa = b.bin(BinOp::Add, pin, i);
    let delta = b.load(pa, 0);
    // index += indexTable[delta]; clamp to [0, 88]
    let pxt = b.lea(indextab, 0);
    let pxe = b.bin(BinOp::Add, pxt, delta);
    let adj = b.load(pxe, 0);
    b.bin_into(BinOp::Add, index, index, adj);
    b.bin_into(BinOp::Max, index, index, 0i64);
    b.bin_into(BinOp::Min, index, index, 88i64);
    // step = stepsizeTable[index]
    let pst = b.lea(steptab, 0);
    let pse = b.bin(BinOp::Add, pst, index);
    let step = b.load(pse, 0);
    // vpdiff = step>>3 + bit-selected terms
    let vpdiff = b.bin(BinOp::Shr, step, 3i64);
    let b4 = b.bin(BinOp::And, delta, 4i64);
    let t4 = b.bin(BinOp::Ne, b4, 0i64);
    let m4 = b.bin(BinOp::Mul, t4, step);
    b.bin_into(BinOp::Add, vpdiff, vpdiff, m4);
    let b2 = b.bin(BinOp::And, delta, 2i64);
    let t2 = b.bin(BinOp::Ne, b2, 0i64);
    let s1 = b.bin(BinOp::Shr, step, 1i64);
    let m2 = b.bin(BinOp::Mul, t2, s1);
    b.bin_into(BinOp::Add, vpdiff, vpdiff, m2);
    let b1 = b.bin(BinOp::And, delta, 1i64);
    let t1 = b.bin(BinOp::Ne, b1, 0i64);
    let s2 = b.bin(BinOp::Shr, step, 2i64);
    let m1 = b.bin(BinOp::Mul, t1, s2);
    b.bin_into(BinOp::Add, vpdiff, vpdiff, m1);
    // Sign hammock: if (delta & 8) valpred -= vpdiff else += vpdiff.
    let sign = b.bin(BinOp::And, delta, 8i64);
    let signo = b.bin(BinOp::Ne, sign, 0i64);
    b.branch(signo, neg, pos);

    b.switch_to(neg);
    b.bin_into(BinOp::Sub, valpred, valpred, vpdiff);
    b.jump(join);
    b.switch_to(pos);
    b.bin_into(BinOp::Add, valpred, valpred, vpdiff);
    b.jump(join);

    b.switch_to(join);
    // Saturate to 16-bit.
    b.bin_into(BinOp::Max, valpred, valpred, -32768i64);
    b.bin_into(BinOp::Min, valpred, valpred, 32767i64);
    let pout = b.lea(out, 0);
    let po = b.bin(BinOp::Add, pout, i);
    b.store(po, 0, valpred);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(header);

    b.switch_to(exit);
    b.output(valpred);
    b.ret(Some(valpred.into()));

    Workload {
        name: "adpcm_decoder",
        benchmark: "adpcmdec",
        suite: "MediaBench",
        exec_pct: 100,
        function: finish(b),
        train_args: vec![TRAIN],
        ref_args: vec![REF],
        init: init_dec,
    }
}

/// `adpcm_coder` (100% of adpcmenc execution).
pub fn coder() -> Workload {
    let mut b = FunctionBuilder::new("adpcm_coder");
    let n = b.param();
    let input = b.object("indata", N);
    let out = b.object("outdata", N);
    let steptab = b.object("stepsizeTable", 89);
    let indextab = b.object("indexTable", 16);
    debug_assert_eq!(input, OBJ_INPUT);
    debug_assert_eq!(out, OBJ_OUTPUT);
    debug_assert_eq!(steptab, OBJ_STEPTAB);
    debug_assert_eq!(indextab, OBJ_INDEXTAB);

    let i = b.fresh_reg();
    let valpred = b.fresh_reg();
    let index = b.fresh_reg();

    let header = b.block("header");
    let body = b.block("body");
    let dneg = b.block("diff_neg");
    let dpos = b.block("diff_pos");
    let djoin = b.block("diff_join");
    let exit = b.block("exit");

    b.const_into(i, 0);
    b.const_into(valpred, 0);
    b.const_into(index, 0);
    b.jump(header);

    b.switch_to(header);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, exit);

    b.switch_to(body);
    let pin = b.lea(input, 0);
    let pa = b.bin(BinOp::Add, pin, i);
    let val = b.load(pa, 0);
    let step = {
        let pst = b.lea(steptab, 0);
        let pse = b.bin(BinOp::Add, pst, index);
        b.load(pse, 0)
    };
    // diff = val - valpred; sign hammock sets delta bit 3 and |diff|.
    let diff = b.bin(BinOp::Sub, val, valpred);
    let sbit = b.fresh_reg();
    let adiff = b.fresh_reg();
    let isneg = b.bin(BinOp::Lt, diff, 0i64);
    b.branch(isneg, dneg, dpos);

    b.switch_to(dneg);
    b.const_into(sbit, 8);
    let negd = b.un(gmt_ir::UnOp::Neg, diff);
    b.mov_into(adiff, negd);
    b.jump(djoin);
    b.switch_to(dpos);
    b.const_into(sbit, 0);
    b.mov_into(adiff, diff);
    b.jump(djoin);

    b.switch_to(djoin);
    // Quantize |diff| into 3 bits (delta) and reconstruct vpdiff.
    let bit2 = b.bin(BinOp::Le, step, adiff);
    let rem2 = b.bin(BinOp::Mul, bit2, step);
    let ad2 = b.bin(BinOp::Sub, adiff, rem2);
    let half = b.bin(BinOp::Shr, step, 1i64);
    let bit1 = b.bin(BinOp::Le, half, ad2);
    let rem1 = b.bin(BinOp::Mul, bit1, half);
    let ad1 = b.bin(BinOp::Sub, ad2, rem1);
    let quarter = b.bin(BinOp::Shr, step, 2i64);
    let bit0 = b.bin(BinOp::Le, quarter, ad1);
    let d2 = b.bin(BinOp::Shl, bit2, 2i64);
    let d1 = b.bin(BinOp::Shl, bit1, 1i64);
    let dlow = b.bin(BinOp::Or, d2, d1);
    let dmag = b.bin(BinOp::Or, dlow, bit0);
    let delta = b.bin(BinOp::Or, dmag, sbit);
    // vpdiff = step>>3 + selected terms; update valpred toward val.
    let vpdiff = b.bin(BinOp::Shr, step, 3i64);
    let m4 = b.bin(BinOp::Mul, bit2, step);
    b.bin_into(BinOp::Add, vpdiff, vpdiff, m4);
    let m2 = b.bin(BinOp::Mul, bit1, half);
    b.bin_into(BinOp::Add, vpdiff, vpdiff, m2);
    let m1 = b.bin(BinOp::Mul, bit0, quarter);
    b.bin_into(BinOp::Add, vpdiff, vpdiff, m1);
    let signed_vp = {
        // valpred += sbit ? -vpdiff : vpdiff (branch-free here; the
        // hammock above already carries the control structure).
        let has_sign = b.bin(BinOp::Ne, sbit, 0i64);
        let two = b.bin(BinOp::Mul, has_sign, vpdiff);
        let twice = b.bin(BinOp::Mul, two, 2i64);
        
        b.bin(BinOp::Sub, vpdiff, twice)
    };
    b.bin_into(BinOp::Add, valpred, valpred, signed_vp);
    b.bin_into(BinOp::Max, valpred, valpred, -32768i64);
    b.bin_into(BinOp::Min, valpred, valpred, 32767i64);
    // index += indexTable[delta]; clamp.
    let pxt = b.lea(indextab, 0);
    let pxe = b.bin(BinOp::Add, pxt, delta);
    let adj = b.load(pxe, 0);
    b.bin_into(BinOp::Add, index, index, adj);
    b.bin_into(BinOp::Max, index, index, 0i64);
    b.bin_into(BinOp::Min, index, index, 88i64);
    // Emit the 4-bit code.
    let pout = b.lea(out, 0);
    let po = b.bin(BinOp::Add, pout, i);
    b.store(po, 0, delta);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(header);

    b.switch_to(exit);
    b.output(index);
    b.ret(Some(valpred.into()));

    Workload {
        name: "adpcm_coder",
        benchmark: "adpcmenc",
        suite: "MediaBench",
        exec_pct: 100,
        function: finish(b),
        train_args: vec![TRAIN],
        ref_args: vec![REF],
        init: init_enc,
    }
}
