//! SPEC `181.mcf`: `refresh_potential` (32% of execution).
//!
//! The original walks the spanning tree of the network simplex in
//! preorder, computing `node->potential = node->parent->potential +
//! node->cost` (sign depending on arc orientation). The defining
//! structure is a *pointer-chasing recurrence through memory*: each
//! node's potential is loaded from its parent's freshly-stored
//! potential, so iterations are linked by store→load memory
//! dependences. Reproduced here with array-encoded parent links in
//! preorder (parents always precede children).

use crate::kernels::finish;
use crate::{fill_signed, Rng, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

const N: u64 = 2048;
const OBJ_PARENT: ObjectId = ObjectId(0);
const OBJ_COST: ObjectId = ObjectId(1);
const OBJ_ORIENT: ObjectId = ObjectId(2);
const OBJ_POT: ObjectId = ObjectId(3);

fn init(layout: &MemoryLayout, mem: &mut Memory) {
    let pb = layout.base(OBJ_PARENT) as usize;
    let cb = layout.base(OBJ_COST) as usize;
    let ob = layout.base(OBJ_ORIENT) as usize;
    let cells = mem.cells_mut();
    // Preorder tree: parent[i] < i; root is node 0.
    let mut rng = Rng::new(0x7EE);
    cells[pb] = 0;
    for k in 1..N as usize {
        cells[pb + k] = rng.below(k as u64) as i64;
    }
    fill_signed(&mut cells[cb..cb + N as usize], 0xC057, 500);
    for k in 0..N as usize {
        cells[ob + k] = (rng.below(2)) as i64; // arc orientation bit
    }
}

/// Builds the `refresh_potential` workload. Arguments: `(n,)`.
pub fn refresh_potential() -> Workload {
    let mut b = FunctionBuilder::new("refresh_potential");
    let n = b.param();
    let parent = b.object("basic_arc_parent", N);
    let cost = b.object("arc_cost", N);
    let orient = b.object("arc_orientation", N);
    let pot = b.object("node_potential", N);
    debug_assert_eq!(parent, OBJ_PARENT);
    debug_assert_eq!(cost, OBJ_COST);
    debug_assert_eq!(orient, OBJ_ORIENT);
    debug_assert_eq!(pot, OBJ_POT);

    let i = b.fresh_reg();
    let checksum = b.fresh_reg();

    let header = b.block("header");
    let body = b.block("body");
    let up = b.block("orient_up");
    let down = b.block("orient_down");
    let join = b.block("join");
    let exit = b.block("exit");

    // potential[0] = a large base value (the original uses MAX_ART_COST).
    let ppot0 = b.lea(pot, 0);
    b.store(ppot0, 0, 1_000_000i64);
    b.const_into(i, 1);
    b.const_into(checksum, 0);
    b.jump(header);

    b.switch_to(header);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, exit);

    b.switch_to(body);
    let pp = b.lea(parent, 0);
    let ppe = b.bin(BinOp::Add, pp, i);
    let par = b.load(ppe, 0);
    let ppot = b.lea(pot, 0);
    let ppar = b.bin(BinOp::Add, ppot, par);
    let parpot = b.load(ppar, 0); // load of a previously-stored potential
    let pc = b.lea(cost, 0);
    let pce = b.bin(BinOp::Add, pc, i);
    let cst = b.load(pce, 0);
    let po = b.lea(orient, 0);
    let poe = b.bin(BinOp::Add, po, i);
    let orientation = b.load(poe, 0);
    let upward = b.bin(BinOp::Ne, orientation, 0i64);
    b.branch(upward, up, down);

    // checknum mirrors the original's sign split on arc orientation.
    b.switch_to(up);
    let newpot_u = b.bin(BinOp::Add, parpot, cst);
    let pme_u = b.bin(BinOp::Add, ppot, i);
    b.store(pme_u, 0, newpot_u);
    b.bin_into(BinOp::Add, checksum, checksum, newpot_u);
    b.jump(join);

    b.switch_to(down);
    let newpot_d = b.bin(BinOp::Sub, parpot, cst);
    let pme_d = b.bin(BinOp::Add, ppot, i);
    b.store(pme_d, 0, newpot_d);
    b.bin_into(BinOp::Sub, checksum, checksum, newpot_d);
    b.jump(join);

    b.switch_to(join);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(header);

    b.switch_to(exit);
    b.output(checksum);
    b.ret(Some(checksum.into()));

    Workload {
        name: "refresh_potential",
        benchmark: "181.mcf",
        suite: "SPEC-CPU",
        exec_pct: 32,
        function: finish(b),
        train_args: vec![192],
        ref_args: vec![N as i64],
        init,
    }
}
