//! MediaBench `mpeg2enc`: `dist1` (58% of execution).
//!
//! Sum-of-absolute-differences over a 16×16 block with the original's
//! early-termination test (`if (s > distlim) break`) after each row.
//! The per-pixel absolute value is a branch hammock, reproducing the
//! shape behind the paper's observation that "for mpeg2enc, COCO
//! optimized the register communication in various hammocks".

use crate::kernels::finish;
use crate::{fill_below, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

const BLOCKS: u64 = 128;
const CELLS: u64 = BLOCKS * 256;
const OBJ_P1: ObjectId = ObjectId(0);
const OBJ_P2: ObjectId = ObjectId(1);

fn init(layout: &MemoryLayout, mem: &mut Memory) {
    let b1 = layout.base(OBJ_P1) as usize;
    let b2 = layout.base(OBJ_P2) as usize;
    let cells = mem.cells_mut();
    fill_below(&mut cells[b1..b1 + CELLS as usize], 0x11, 256);
    fill_below(&mut cells[b2..b2 + CELLS as usize], 0x22, 256);
}

/// Builds the `dist1` workload. Arguments: `(nblocks, distlim)`.
pub fn dist1() -> Workload {
    let mut b = FunctionBuilder::new("dist1");
    let nblocks = b.param();
    let distlim = b.param();
    let p1 = b.object("blk1", CELLS);
    let p2 = b.object("blk2", CELLS);
    debug_assert_eq!(p1, OBJ_P1);
    debug_assert_eq!(p2, OBJ_P2);

    let blk = b.fresh_reg();
    let total = b.fresh_reg();
    let s = b.fresh_reg();
    let y = b.fresh_reg();
    let x = b.fresh_reg();

    let blk_h = b.block("blk_header");
    let blk_body = b.block("blk_body");
    let row_h = b.block("row_header");
    let row_body = b.block("row_body");
    let pix_h = b.block("pix_header");
    let pix_body = b.block("pix_body");
    let abs_neg = b.block("abs_neg");
    let abs_pos = b.block("abs_pos");
    let abs_join = b.block("abs_join");
    let row_tail = b.block("row_tail");
    let blk_tail = b.block("blk_tail");
    let exit = b.block("exit");

    b.const_into(blk, 0);
    b.const_into(total, 0);
    b.jump(blk_h);

    b.switch_to(blk_h);
    let cb = b.bin(BinOp::Lt, blk, nblocks);
    b.branch(cb, blk_body, exit);

    b.switch_to(blk_body);
    b.const_into(s, 0);
    b.const_into(y, 0);
    let base = b.bin(BinOp::Shl, blk, 8i64); // blk * 256
    b.jump(row_h);

    b.switch_to(row_h);
    let cy = b.bin(BinOp::Lt, y, 16i64);
    b.branch(cy, row_body, blk_tail);

    b.switch_to(row_body);
    b.const_into(x, 0);
    let rowoff = b.bin(BinOp::Shl, y, 4i64); // y * 16
    let rowbase = b.bin(BinOp::Add, base, rowoff);
    b.jump(pix_h);

    b.switch_to(pix_h);
    let cx = b.bin(BinOp::Lt, x, 16i64);
    b.branch(cx, pix_body, row_tail);

    b.switch_to(pix_body);
    // The original's per-pixel body:
    //   v = p1[k] - p2[k]; if (v < 0) v = -v; s += v;
    // Note `v` is *redefined* in the taken arm and consumed after the
    // join — the hammock-communication pattern the paper credits for
    // mpeg2enc's COCO gains ("COCO optimized the register
    // communication in various hammocks").
    let off = b.bin(BinOp::Add, rowbase, x);
    let a1 = b.lea(p1, 0);
    let e1 = b.bin(BinOp::Add, a1, off);
    let v1 = b.load(e1, 0);
    let a2 = b.lea(p2, 0);
    let e2 = b.bin(BinOp::Add, a2, off);
    let v2 = b.load(e2, 0);
    let d = b.fresh_reg();
    b.bin_into(BinOp::Sub, d, v1, v2);
    let neg = b.bin(BinOp::Lt, d, 0i64);
    b.branch(neg, abs_neg, abs_pos);

    b.switch_to(abs_neg);
    let nd = b.un(gmt_ir::UnOp::Neg, d);
    b.mov_into(d, nd); // v = -v
    b.jump(abs_join);
    b.switch_to(abs_pos);
    b.jump(abs_join);

    b.switch_to(abs_join);
    b.bin_into(BinOp::Add, s, s, d); // s += v, after the join
    b.bin_into(BinOp::Add, x, x, 1i64);
    b.jump(pix_h);

    b.switch_to(row_tail);
    b.bin_into(BinOp::Add, y, y, 1i64);
    // Early termination: if s > distlim, abandon the block.
    let over = b.bin(BinOp::Lt, distlim, s);
    b.branch(over, blk_tail, row_h);

    b.switch_to(blk_tail);
    b.bin_into(BinOp::Add, total, total, s);
    b.bin_into(BinOp::Add, blk, blk, 1i64);
    b.jump(blk_h);

    b.switch_to(exit);
    b.output(total);
    b.ret(Some(total.into()));

    Workload {
        name: "dist1",
        benchmark: "mpeg2enc",
        suite: "MediaBench",
        exec_pct: 58,
        function: finish(b),
        train_args: vec![8, 6000],
        ref_args: vec![BLOCKS as i64, 6000],
        init,
    }
}
