//! SPEC `183.equake`: `smvp` (63% of execution).
//!
//! Sparse matrix–vector product over the earthquake mesh in symmetric
//! CSR form: for each row `i`, the diagonal contribution plus, for each
//! stored off-diagonal `(i, col)`, updates to *both* `w[i]` and
//! `w[col]` — the symmetric scatter that gives smvp its loop-carried
//! memory dependences through the result vector.

use crate::kernels::finish;
use crate::{fill_signed, Rng, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

const ROWS: u64 = 512;
const NNZ_PER_ROW: u64 = 4;
const NNZ: u64 = ROWS * NNZ_PER_ROW;
const OBJ_ROWSTART: ObjectId = ObjectId(0);
const OBJ_COL: ObjectId = ObjectId(1);
const OBJ_A: ObjectId = ObjectId(2);
const OBJ_ADIAG: ObjectId = ObjectId(3);
const OBJ_V: ObjectId = ObjectId(4);
const OBJ_W: ObjectId = ObjectId(5);

fn init(layout: &MemoryLayout, mem: &mut Memory) {
    let rs = layout.base(OBJ_ROWSTART) as usize;
    let co = layout.base(OBJ_COL) as usize;
    let ab = layout.base(OBJ_A) as usize;
    let db = layout.base(OBJ_ADIAG) as usize;
    let vb = layout.base(OBJ_V) as usize;
    let cells = mem.cells_mut();
    let mut rng = Rng::new(0x0E5);
    // Fixed fan-out CSR: row i owns entries [i*4, i*4+4), cols < i
    // (lower triangle, like the mesh's symmetric storage).
    for i in 0..=ROWS as usize {
        cells[rs + i] = (i as u64 * NNZ_PER_ROW) as i64;
    }
    for i in 0..ROWS as usize {
        for k in 0..NNZ_PER_ROW as usize {
            let col = if i == 0 { 0 } else { rng.below(i as u64) as i64 };
            cells[co + i * NNZ_PER_ROW as usize + k] = col;
        }
    }
    fill_signed(&mut cells[ab..ab + NNZ as usize], 0xA0, 20);
    fill_signed(&mut cells[db..db + ROWS as usize], 0xD1, 20);
    fill_signed(&mut cells[vb..vb + ROWS as usize], 0x77, 100);
}

/// Builds the `smvp` workload. Arguments: `(rows,)`.
pub fn smvp() -> Workload {
    let mut b = FunctionBuilder::new("smvp");
    let rows = b.param();
    let rowstart = b.object("Aindex_row", ROWS + 1);
    let col = b.object("Aindex_col", NNZ);
    let a = b.object("A", NNZ);
    let adiag = b.object("Adiag", ROWS);
    let v = b.object("v", ROWS);
    let w = b.object("w", ROWS);
    debug_assert_eq!(rowstart, OBJ_ROWSTART);
    debug_assert_eq!(col, OBJ_COL);
    debug_assert_eq!(a, OBJ_A);
    debug_assert_eq!(adiag, OBJ_ADIAG);
    debug_assert_eq!(v, OBJ_V);
    debug_assert_eq!(w, OBJ_W);

    let i = b.fresh_reg();
    let k = b.fresh_reg();
    let kend = b.fresh_reg();
    let sum = b.fresh_reg();

    let row_h = b.block("row_header");
    let row_body = b.block("row_body");
    let nz_h = b.block("nz_header");
    let nz_body = b.block("nz_body");
    let row_tail = b.block("row_tail");
    let chk_init = b.block("chk_init");
    let chk_h = b.block("chk_header");
    let chk_body = b.block("chk_body");
    let exit = b.block("exit");

    b.const_into(i, 0);
    b.jump(row_h);

    b.switch_to(row_h);
    let c = b.bin(BinOp::Lt, i, rows);
    b.branch(c, row_body, chk_init);

    b.switch_to(row_body);
    // sum = Adiag[i] * v[i]
    let pd = b.lea(adiag, 0);
    let pde = b.bin(BinOp::Add, pd, i);
    let dv = b.load(pde, 0);
    let pv = b.lea(v, 0);
    let pve = b.bin(BinOp::Add, pv, i);
    let vi = b.load(pve, 0);
    let prod0 = b.bin(BinOp::FMul, dv, vi);
    b.mov_into(sum, prod0);
    // k = rowstart[i]; kend = rowstart[i+1]
    let prs = b.lea(rowstart, 0);
    let prse = b.bin(BinOp::Add, prs, i);
    let k0 = b.load(prse, 0);
    b.mov_into(k, k0);
    let kend0 = b.load(prse, 1);
    b.mov_into(kend, kend0);
    b.jump(nz_h);

    b.switch_to(nz_h);
    let cn = b.bin(BinOp::Lt, k, kend);
    b.branch(cn, nz_body, row_tail);

    b.switch_to(nz_body);
    let pcol = b.lea(col, 0);
    let pcole = b.bin(BinOp::Add, pcol, k);
    let cj = b.load(pcole, 0);
    let pa = b.lea(a, 0);
    let pae = b.bin(BinOp::Add, pa, k);
    let av = b.load(pae, 0);
    // sum += A[k] * v[col]
    let pvc = b.bin(BinOp::Add, pv, cj);
    let vc = b.load(pvc, 0);
    let p1 = b.bin(BinOp::FMul, av, vc);
    b.bin_into(BinOp::FAdd, sum, sum, p1);
    // Symmetric scatter: w[col] += A[k] * v[i]
    let p2 = b.bin(BinOp::FMul, av, vi);
    let pw = b.lea(w, 0);
    let pwc = b.bin(BinOp::Add, pw, cj);
    let wold = b.load(pwc, 0);
    let wnew = b.bin(BinOp::FAdd, wold, p2);
    b.store(pwc, 0, wnew);
    b.bin_into(BinOp::Add, k, k, 1i64);
    b.jump(nz_h);

    b.switch_to(row_tail);
    // w[i] += sum
    let pw2 = b.lea(w, 0);
    let pwi = b.bin(BinOp::Add, pw2, i);
    let wi = b.load(pwi, 0);
    let wsum = b.bin(BinOp::FAdd, wi, sum);
    b.store(pwi, 0, wsum);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(row_h);

    // Checksum loop over w.
    b.switch_to(chk_init);
    let chk = b.fresh_reg();
    let ci = b.fresh_reg();
    b.const_into(chk, 0);
    b.const_into(ci, 0);
    b.jump(chk_h);

    b.switch_to(chk_h);
    let cc = b.bin(BinOp::Lt, ci, rows);
    b.branch(cc, chk_body, exit);

    b.switch_to(chk_body);
    let pw3 = b.lea(w, 0);
    let pwe = b.bin(BinOp::Add, pw3, ci);
    let wv = b.load(pwe, 0);
    b.bin_into(BinOp::Add, chk, chk, wv);
    b.bin_into(BinOp::Add, ci, ci, 1i64);
    b.jump(chk_h);

    b.switch_to(exit);
    b.output(chk);
    b.ret(Some(chk.into()));

    Workload {
        name: "smvp",
        benchmark: "183.equake",
        suite: "SPEC-CPU",
        exec_pct: 63,
        function: finish(b),
        train_args: vec![96],
        ref_args: vec![ROWS as i64],
        init,
    }
}
