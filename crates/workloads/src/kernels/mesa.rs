//! SPEC `177.mesa`: `general_textured_triangle` (32% of execution).
//!
//! The rasterizer's span loop: for every fragment, interpolate depth
//! and texture coordinates, perform the z-test, fetch the texel, and
//! write the color and depth buffers. Two phases touch the frame
//! buffers — the z-test *reads* the depth buffer the same loop also
//! *writes* — which is what made mesa one of only two benchmarks with
//! inter-thread memory dependences under GREMIO in the paper (both
//! >99% removable by COCO).

use crate::kernels::finish;
use crate::{fill_below, Workload};
use gmt_ir::interp::{Memory, MemoryLayout};
use gmt_ir::{BinOp, FunctionBuilder, ObjectId};

const WIDTH: u64 = 256;
const SPANS: u64 = 128;
const TEX: u64 = 1024;
const OBJ_TEXTURE: ObjectId = ObjectId(0);
const OBJ_DEPTH: ObjectId = ObjectId(1);
const OBJ_COLOR: ObjectId = ObjectId(2);

fn init(layout: &MemoryLayout, mem: &mut Memory) {
    let tb = layout.base(OBJ_TEXTURE) as usize;
    let db = layout.base(OBJ_DEPTH) as usize;
    let cells = mem.cells_mut();
    fill_below(&mut cells[tb..tb + TEX as usize], 0x7E1, 256);
    // Depth buffer initialized "far".
    for k in 0..WIDTH as usize {
        cells[db + k] = 1 << 20;
    }
}

/// Builds the `general_textured_triangle` workload.
/// Arguments: `(nspans, span_len)`.
pub fn general_textured_triangle() -> Workload {
    let mut b = FunctionBuilder::new("general_textured_triangle");
    let nspans = b.param();
    let span_len = b.param();
    let texture = b.object("texture", TEX);
    let depth = b.object("zbuffer", WIDTH);
    let color = b.object("colorbuffer", WIDTH);
    debug_assert_eq!(texture, OBJ_TEXTURE);
    debug_assert_eq!(depth, OBJ_DEPTH);
    debug_assert_eq!(color, OBJ_COLOR);

    let span = b.fresh_reg();
    let x = b.fresh_reg();
    let z = b.fresh_reg();
    let scoord = b.fresh_reg();
    let shaded = b.fresh_reg();
    let written = b.fresh_reg();

    let span_h = b.block("span_header");
    let span_body = b.block("span_body");
    let frag_h = b.block("frag_header");
    let frag_body = b.block("frag_body");
    let zpass = b.block("z_pass");
    let zfail = b.block("z_fail");
    let frag_next = b.block("frag_next");
    let span_tail = b.block("span_tail");
    let exit = b.block("exit");

    b.const_into(span, 0);
    b.const_into(written, 0);
    b.jump(span_h);

    b.switch_to(span_h);
    let cs = b.bin(BinOp::Lt, span, nspans);
    b.branch(cs, span_body, exit);

    b.switch_to(span_body);
    b.const_into(x, 0);
    // Per-span interpolant setup: z0 and s0 derived from span index.
    let z0 = b.bin(BinOp::Mul, span, 37i64);
    b.mov_into(z, z0);
    let s0 = b.bin(BinOp::Mul, span, 11i64);
    b.mov_into(scoord, s0);
    b.jump(frag_h);

    b.switch_to(frag_h);
    let cf = b.bin(BinOp::Lt, x, span_len);
    b.branch(cf, frag_body, span_tail);

    b.switch_to(frag_body);
    // z-test: read the depth buffer the loop also writes.
    let pz = b.lea(depth, 0);
    let pze = b.bin(BinOp::Add, pz, x);
    let zbuf = b.load(pze, 0);
    let pass = b.bin(BinOp::Lt, z, zbuf);
    b.branch(pass, zpass, zfail);

    b.switch_to(zpass);
    // Texture fetch + modulate shading.
    let smask = b.bin(BinOp::And, scoord, (TEX - 1) as i64);
    let pt = b.lea(texture, 0);
    let pte = b.bin(BinOp::Add, pt, smask);
    let texel = b.load(pte, 0);
    let lit = b.bin(BinOp::Mul, texel, 3i64);
    let fog = b.bin(BinOp::Shr, z, 4i64);
    let c2 = b.bin(BinOp::Add, lit, fog);
    b.mov_into(shaded, c2);
    // Write color and depth.
    let pc = b.lea(color, 0);
    let pce = b.bin(BinOp::Add, pc, x);
    b.store(pce, 0, shaded);
    b.store(pze, 0, z);
    b.bin_into(BinOp::Add, written, written, 1i64);
    b.jump(frag_next);

    b.switch_to(zfail);
    b.jump(frag_next);

    b.switch_to(frag_next);
    // Interpolant steps.
    b.bin_into(BinOp::Add, z, z, 3i64);
    b.bin_into(BinOp::Add, scoord, scoord, 7i64);
    b.bin_into(BinOp::Add, x, x, 1i64);
    b.jump(frag_h);

    b.switch_to(span_tail);
    b.bin_into(BinOp::Add, span, span, 1i64);
    b.jump(span_h);

    b.switch_to(exit);
    // Checksum the color buffer head.
    let pc2 = b.lea(color, 0);
    let c0 = b.load(pc2, 0);
    let c1 = b.load(pc2, 1);
    let sum = b.bin(BinOp::Add, c0, c1);
    let chk = b.bin(BinOp::Add, sum, written);
    b.output(chk);
    b.ret(Some(chk.into()));

    Workload {
        name: "general_textured_triangle",
        benchmark: "177.mesa",
        suite: "SPEC-CPU",
        exec_pct: 32,
        function: finish(b),
        train_args: vec![16, 64],
        ref_args: vec![SPANS as i64, WIDTH as i64],
        init,
    }
}
