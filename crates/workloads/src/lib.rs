//! The benchmark functions of the paper's evaluation (Figure 6b),
//! re-expressed in the `gmt-ir` intermediate representation.
//!
//! The original evaluation selects one hot function from each of 11
//! MediaBench / SPEC-CPU / Pointer-Intensive benchmarks. Those exact
//! binaries (and the IMPACT front end that lowered them) are not
//! reproducible here, so each kernel is rebuilt *structurally*: the
//! loop nests, branch shapes, recurrences, and memory access patterns
//! that drive partitioning and communication are preserved, per-kernel
//! doc comments state what is mirrored, and inputs come in *train*
//! (profiling) and *ref* (measurement) sizes like the paper's
//! methodology (§4).
//!
//! All kernels have critical edges split
//! ([`gmt_ir::split_critical_edges`]) so every COCO cut arc is a
//! placeable program point.
//!
//! # Example
//!
//! ```
//! let w = gmt_workloads::catalog()
//!     .into_iter()
//!     .find(|w| w.benchmark == "ks")
//!     .expect("ks is in the catalog");
//! let train = w.run_train().expect("runs");
//! assert!(train.counts.total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod util;

pub use util::{fill_below, fill_signed, Rng};

use gmt_ir::interp::{run_with_memory, ExecConfig, Memory, MemoryLayout, RunResult};
use gmt_ir::Function;

/// One benchmark function with its inputs.
pub struct Workload {
    /// The function name from Figure 6(b) (e.g. `"FindMaxGpAndSwap"`).
    pub name: &'static str,
    /// The benchmark it comes from (e.g. `"ks"`, `"181.mcf"`).
    pub benchmark: &'static str,
    /// The suite (MediaBench / SPEC-CPU / Pointer-Intensive).
    pub suite: &'static str,
    /// The fraction of benchmark execution the function covers (%).
    pub exec_pct: u32,
    /// The kernel in IR, verified and critical-edge-split.
    pub function: Function,
    /// Arguments for the small *train* run (profiling).
    pub train_args: Vec<i64>,
    /// Arguments for the larger *ref* run (measurement).
    pub ref_args: Vec<i64>,
    /// Memory initializer (deterministic).
    pub init: fn(&MemoryLayout, &mut Memory),
}

impl Workload {
    /// Runs the kernel on the train input, producing the profile.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (none are expected for catalog
    /// workloads).
    pub fn run_train(&self) -> Result<RunResult, gmt_ir::interp::ExecError> {
        run_with_memory(&self.function, &self.train_args, self.init, &exec_config())
    }

    /// Runs the kernel on the ref input.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn run_ref(&self) -> Result<RunResult, gmt_ir::interp::ExecError> {
        run_with_memory(&self.function, &self.ref_args, self.init, &exec_config())
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("benchmark", &self.benchmark)
            .field("exec_pct", &self.exec_pct)
            .finish_non_exhaustive()
    }
}

/// The interpreter budget used for workload runs.
pub fn exec_config() -> ExecConfig {
    ExecConfig { max_steps: 200_000_000 }
}

/// All 11 workloads of Figure 6(b), in the paper's order.
pub fn catalog() -> Vec<Workload> {
    vec![
        kernels::adpcm::decoder(),
        kernels::adpcm::coder(),
        kernels::ks::find_max_gp_and_swap(),
        kernels::mpeg2::dist1(),
        kernels::mesa::general_textured_triangle(),
        kernels::mcf::refresh_potential(),
        kernels::equake::smvp(),
        kernels::ammp::mm_fv_update_nonbon(),
        kernels::twolf::new_dbox_a(),
        kernels::gromacs::inl1130(),
        kernels::sjeng::std_eval(),
    ]
}

/// Looks a workload up by benchmark name.
pub fn by_benchmark(name: &str) -> Option<Workload> {
    catalog().into_iter().find(|w| w.benchmark == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_figure_6b() {
        let names: Vec<_> = catalog().iter().map(|w| w.benchmark).collect();
        assert_eq!(
            names,
            vec![
                "adpcmdec",
                "adpcmenc",
                "ks",
                "mpeg2enc",
                "177.mesa",
                "181.mcf",
                "183.equake",
                "188.ammp",
                "300.twolf",
                "435.gromacs",
                "458.sjeng",
            ]
        );
    }

    #[test]
    fn all_kernels_verified_and_split() {
        for w in catalog() {
            assert!(gmt_ir::verify(&w.function).is_ok(), "{}", w.benchmark);
            assert!(
                !gmt_ir::has_critical_edges(&w.function),
                "{} has critical edges",
                w.benchmark
            );
        }
    }

    #[test]
    fn exec_percentages_match_paper() {
        let pct: Vec<_> = catalog().iter().map(|w| w.exec_pct).collect();
        assert_eq!(pct, vec![100, 100, 100, 58, 32, 32, 63, 79, 30, 75, 26]);
    }

    #[test]
    fn lookup_by_benchmark() {
        assert!(by_benchmark("ks").is_some());
        assert!(by_benchmark("nope").is_none());
    }
}
