//! Deterministic input generation shared by the kernels.

/// A xorshift64* generator: deterministic, seedable, dependency-free.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// A generator with the given nonzero seed.
    pub fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// A signed value in `[-amp, amp]`.
    pub fn signed(&mut self, amp: i64) -> i64 {
        (self.below((2 * amp + 1) as u64)) as i64 - amp
    }
}

/// Fills `cells` with small signed values from a fixed seed.
pub fn fill_signed(cells: &mut [i64], seed: u64, amp: i64) {
    let mut rng = Rng::new(seed);
    for c in cells.iter_mut() {
        *c = rng.signed(amp);
    }
}

/// Fills `cells` with values in `[0, bound)`.
pub fn fill_below(cells: &mut [i64], seed: u64, bound: u64) {
    let mut rng = Rng::new(seed);
    for c in cells.iter_mut() {
        *c = rng.below(bound) as i64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let s = r.signed(5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn fills() {
        let mut v = vec![0i64; 64];
        fill_signed(&mut v, 1, 100);
        assert!(v.iter().any(|&x| x != 0));
        fill_below(&mut v, 2, 7);
        assert!(v.iter().all(|&x| (0..7).contains(&x)));
    }
}
