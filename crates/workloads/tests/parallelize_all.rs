//! The supreme correctness gate: every catalog kernel, parallelized by
//! both partitioners, with and without COCO, must reproduce the
//! sequential run's return value and output trace on both train and
//! ref inputs (profiles always come from the *train* run, results from
//! *ref*, per the paper's methodology).

use gmt_core::{CocoConfig, Parallelizer, Scheduler};
use gmt_ir::interp::run_with_memory;
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_workloads::{catalog, exec_config, Workload};

fn check(w: &Workload, scheduler: Scheduler, coco: bool, queue_depth: usize) {
    let train = w.run_train().expect("train run");
    let reference = w.run_ref().expect("ref run");
    let mut par = Parallelizer::new(scheduler);
    if coco {
        par = par.with_coco(CocoConfig::default());
    }
    let result = par
        .parallelize(&w.function, &train.profile)
        .unwrap_or_else(|e| panic!("{}: parallelize failed: {e}", w.benchmark));
    let mt = run_mt(
        result.threads(),
        &w.ref_args,
        w.init,
        &QueueConfig {
            num_queues: result.num_queues().max(1) as usize,
            capacity: queue_depth,
        },
        &exec_config(),
    )
    .unwrap_or_else(|e| panic!("{}: MT run failed: {e}", w.benchmark));
    assert_eq!(
        mt.return_value, reference.return_value,
        "{}: return value mismatch (coco={coco})",
        w.benchmark
    );
    assert_eq!(
        mt.output, reference.output,
        "{}: output mismatch (coco={coco})",
        w.benchmark
    );
}

#[test]
fn sequential_train_and_ref_run() {
    for w in catalog() {
        let t = w.run_train().expect(w.benchmark);
        let r = w.run_ref().expect(w.benchmark);
        assert!(t.counts.total() > 100, "{}: train too small", w.benchmark);
        assert!(
            r.counts.total() > t.counts.total(),
            "{}: ref must exceed train",
            w.benchmark
        );
    }
}

#[test]
fn sequential_runs_are_deterministic() {
    for w in catalog() {
        let a = w.run_ref().expect(w.benchmark);
        let b = w.run_ref().expect(w.benchmark);
        assert_eq!(a.return_value, b.return_value, "{}", w.benchmark);
        assert_eq!(a.output, b.output, "{}", w.benchmark);
    }
}

#[test]
fn dswp_mtcg_correct_all_kernels() {
    for w in catalog() {
        check(&w, Scheduler::dswp(2), false, 32);
    }
}

#[test]
fn dswp_coco_correct_all_kernels() {
    for w in catalog() {
        check(&w, Scheduler::dswp(2), true, 32);
    }
}

#[test]
fn gremio_mtcg_correct_all_kernels() {
    for w in catalog() {
        check(&w, Scheduler::gremio(2), false, 1);
    }
}

#[test]
fn gremio_coco_correct_all_kernels() {
    for w in catalog() {
        check(&w, Scheduler::gremio(2), true, 1);
    }
}

#[test]
fn coco_never_increases_dynamic_communication() {
    // The paper: "COCO never resulted in an increase in dynamic
    // communication instructions."
    for w in catalog() {
        let train = w.run_train().expect("train");
        for scheduler in [Scheduler::dswp(2), Scheduler::gremio(2)] {
            let base = Parallelizer::new(scheduler.clone())
                .parallelize(&w.function, &train.profile)
                .unwrap();
            let coco = Parallelizer::new(scheduler.clone())
                .with_coco(CocoConfig::default())
                .parallelize(&w.function, &train.profile)
                .unwrap();
            let count = |r: &gmt_core::Parallelized| {
                run_mt(
                    r.threads(),
                    &w.ref_args,
                    w.init,
                    &QueueConfig {
                        num_queues: r.num_queues().max(1) as usize,
                        capacity: 32,
                    },
                    &exec_config(),
                )
                .unwrap()
                .totals()
                .comm_total()
            };
            let b = count(&base);
            let c = count(&coco);
            assert!(
                c <= b,
                "{} / {:?}: COCO increased communication {b} -> {c}",
                w.benchmark,
                scheduler
            );
        }
    }
}

#[test]
fn single_threaded_memory_init_matches_interpreter_helpers() {
    // Sanity: run_with_memory and Workload::run_ref agree.
    for w in catalog().into_iter().take(2) {
        let direct =
            run_with_memory(&w.function, &w.ref_args, w.init, &exec_config()).unwrap();
        let via = w.run_ref().unwrap();
        assert_eq!(direct.return_value, via.return_value);
    }
}
