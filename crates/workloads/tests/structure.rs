//! Structural self-checks: each kernel must actually carry the
//! features its documentation claims to mirror from the original
//! benchmark — those features are what make the reproduction's
//! partitioning and communication behavior meaningful.

use gmt_ir::{BinOp, Dominators, Function, LoopForest, Op};
use gmt_pdg::{DepKind, Pdg};
use gmt_workloads::by_benchmark;

fn loops_of(f: &Function) -> LoopForest {
    let dom = Dominators::compute(f);
    LoopForest::compute(f, &dom)
}

fn has_hammock(f: &Function) -> bool {
    // A conditional branch whose arms rejoin (neither arm is a loop
    // back edge): detect a branch with two successors that both reach a
    // common block without revisiting the branch block... simplified:
    // any block with two successors each having exactly one predecessor
    // and one successor in common.
    f.blocks().any(|b| {
        let succs = f.successors(b);
        if succs.len() != 2 {
            return false;
        }
        let s0: Vec<_> = f.successors(succs[0]);
        let s1: Vec<_> = f.successors(succs[1]);
        s0.len() == 1 && s1.len() == 1 && s0[0] == s1[0]
    })
}

#[test]
fn adpcm_kernels_have_recurrences_and_sign_hammock() {
    for bench in ["adpcmdec", "adpcmenc"] {
        let w = by_benchmark(bench).unwrap();
        let pdg = Pdg::build(&w.function);
        // Loop-carried register recurrences (valpred, index).
        let carried_regs = pdg
            .deps()
            .iter()
            .filter(|d| d.loop_carried && matches!(d.kind, DepKind::Register(_)))
            .count();
        assert!(carried_regs >= 2, "{bench}: {carried_regs}");
        assert!(has_hammock(&w.function), "{bench}: sign hammock missing");
    }
}

#[test]
fn ks_has_the_figure4_liveout_shape() {
    let w = by_benchmark("ks").unwrap();
    let loops = loops_of(&w.function);
    // Nested structure: pass loop containing two inner loops.
    assert!(loops.loops.iter().any(|l| l.depth == 2), "inner loops");
    let inner_count = loops.loops.iter().filter(|l| l.depth == 2).count();
    assert!(inner_count >= 2, "scan and update loops: {inner_count}");
    // A register defined in an inner loop and used outside it (the
    // live-out maxgp/maxi pattern).
    let pdg = Pdg::build(&w.function);
    let f = &w.function;
    let liveout = pdg.deps().iter().any(|d| {
        if !matches!(d.kind, DepKind::Register(_)) {
            return false;
        }
        let (sb, db) = (f.block_of(d.src), f.block_of(d.dst));
        loops.depth_of(sb) == 2 && loops.depth_of(db) < 2
    });
    assert!(liveout, "inner-loop live-out consumed outside");
}

#[test]
fn mpeg2_has_early_exit_and_redefining_abs_hammock() {
    let w = by_benchmark("mpeg2enc").unwrap();
    let f = &w.function;
    assert!(has_hammock(f), "abs hammock");
    // A register redefined inside a hammock arm (the `if (v<0) v=-v`
    // pattern): some register with defs in a block whose single
    // successor is a join.
    let redef_in_arm = f.blocks().any(|b| {
        let succs = f.successors(b);
        succs.len() == 1
            && f.predecessors()[b.index()].len() == 1
            && f.block(b).instrs.iter().any(|&i| {
                matches!(f.instr(i), Op::Un(gmt_ir::UnOp::Mov, ..))
            })
    });
    assert!(redef_in_arm, "redefinition in the arm");
    // Triple-nested loops (block, row, pixel).
    let loops = loops_of(f);
    assert!(loops.loops.iter().any(|l| l.depth >= 3), "16x16-in-blocks nest");
}

#[test]
fn mcf_is_a_memory_recurrence() {
    let w = by_benchmark("181.mcf").unwrap();
    let pdg = Pdg::build(&w.function);
    // potential[] store feeds later potential[] loads: loop memory deps.
    let mem_carried = pdg
        .deps()
        .iter()
        .any(|d| d.kind == DepKind::Memory && d.loop_carried);
    assert!(mem_carried, "pointer-chase store→load recurrence");
}

#[test]
fn equake_has_symmetric_scatter_memory_deps() {
    let w = by_benchmark("183.equake").unwrap();
    let pdg = Pdg::build(&w.function);
    let mem = pdg.deps().iter().filter(|d| d.kind == DepKind::Memory).count();
    assert!(mem >= 2, "w[] read-modify-write scatter: {mem}");
    // FP-classified arithmetic.
    let fp = w
        .function
        .all_instrs()
        .filter(|&i| matches!(w.function.instr(i), Op::Bin(b, ..) if b.is_float_class()))
        .count();
    assert!(fp >= 3, "{fp}");
}

#[test]
fn ammp_has_cutoff_hammock_and_fp_tail() {
    let w = by_benchmark("188.ammp").unwrap();
    let f = &w.function;
    let fp = f
        .all_instrs()
        .filter(|&i| matches!(f.instr(i), Op::Bin(b, ..) if b.is_float_class()))
        .count();
    assert!(fp >= 5, "LJ-style FP tail: {fp}");
    // The cutoff test guards the FP tail: FP ops live in a block
    // control-dependent on a branch.
    let pdom = gmt_ir::PostDominators::compute(f);
    let cd = gmt_ir::ControlDeps::compute(f, &pdom);
    let guarded_fp = f.all_instrs().any(|i| {
        matches!(f.instr(i), Op::Bin(b, ..) if b.is_float_class())
            && !cd.of_block(f.block_of(i)).is_empty()
    });
    assert!(guarded_fp);
}

#[test]
fn twolf_is_branch_dense() {
    let w = by_benchmark("300.twolf").unwrap();
    let f = &w.function;
    let branches = f
        .all_instrs()
        .filter(|&i| f.instr(i).is_branch())
        .count();
    assert!(branches >= 4, "direction + boundary hammocks: {branches}");
}

#[test]
fn gromacs_working_set_spans_the_l2_cliff() {
    let w = by_benchmark("435.gromacs").unwrap();
    let cells: u64 = w.function.objects().iter().map(|o| o.size).sum();
    let bytes = cells * 8;
    let l2 = 256 * 1024;
    assert!(bytes > l2, "total working set must overflow one L2: {bytes}");
    // Coordinate-side (jlist+pos) and force-side (ftab+force) halves
    // each fit one L2.
    let objs = w.function.objects();
    let coord = (objs[0].size + objs[1].size) * 8;
    let force = (objs[2].size + objs[3].size) * 8;
    assert!(coord <= l2, "{coord}");
    assert!(force <= l2, "{force}");
}

#[test]
fn sjeng_has_a_piece_dispatch() {
    let w = by_benchmark("458.sjeng").unwrap();
    let f = &w.function;
    // A chain of Eq comparisons feeding branches (the switch stand-in).
    let eqs = f
        .all_instrs()
        .filter(|&i| matches!(f.instr(i), Op::Bin(BinOp::Eq, ..)))
        .count();
    assert!(eqs >= 2, "{eqs}");
    let loops = loops_of(f);
    assert!(loops.loops.iter().any(|l| l.depth == 2), "square loop in eval loop");
}

#[test]
fn mesa_ztest_reads_what_the_loop_writes() {
    let w = by_benchmark("177.mesa").unwrap();
    let pdg = Pdg::build(&w.function);
    let f = &w.function;
    // A load of the depth buffer depends on a store to it (z-test).
    let store_to_load = pdg.deps().iter().any(|d| {
        d.kind == DepKind::Memory
            && matches!(f.instr(d.src), Op::Store(..))
            && f.instr(d.dst).is_mem_read()
    });
    assert!(store_to_load);
}

#[test]
fn train_inputs_are_representative() {
    // Train and ref must exercise the same paths (every block with
    // nonzero ref weight has nonzero train weight), otherwise the
    // profile-driven placement would be flying blind.
    for w in gmt_workloads::catalog() {
        let train = w.run_train().unwrap();
        let reference = w.run_ref().unwrap();
        let tw = train.profile.block_weights(&w.function);
        let rw = reference.profile.block_weights(&w.function);
        for b in w.function.blocks() {
            if rw[b.index()] > 0 {
                assert!(
                    tw[b.index()] > 0,
                    "{}: block {b:?} cold in train but hot in ref",
                    w.benchmark
                );
            }
        }
    }
}
