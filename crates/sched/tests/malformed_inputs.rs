//! Property tests feeding the partitioners untrusted configurations
//! over random programs: no input may panic; invalid configurations
//! must come back as a [`SchedError`].
//!
//! Replay a failure with `GMT_TESTKIT_SEED=<seed from the message>`.

use gmt_integration_tests::{compile, program_gen, Stmt};
use gmt_ir::Profile;
use gmt_pdg::Pdg;
use gmt_sched::{dswp, gremio, SchedError};
use gmt_testkit::{prop_assert, ranged, Checker, Gen};

/// A zero-thread configuration is diagnosed, never a panic or an
/// arithmetic underflow inside the partitioner.
#[test]
fn zero_threads_is_an_error_not_a_panic() {
    let gen = program_gen();
    Checker::new("sched_malformed::zero_threads").cases(24).run(&gen, |program| {
        let f = compile(program);
        let pdg = Pdg::build(&f);
        let profile = Profile::uniform(&f, 10);
        let d = dswp::partition(
            &f,
            &pdg,
            &profile,
            &dswp::DswpConfig { num_threads: 0, comm_latency: 1 },
        );
        prop_assert!(matches!(d, Err(SchedError::NoThreads)), "dswp accepted 0 threads: {d:?}");
        let g = gremio::partition(
            &f,
            &pdg,
            &profile,
            &gremio::GremioConfig { num_threads: 0, comm_latency: 1 },
        );
        prop_assert!(matches!(g, Err(SchedError::NoThreads)), "gremio accepted 0 threads: {g:?}");
        let c = gremio::candidates(
            &f,
            &pdg,
            &profile,
            &gremio::GremioConfig { num_threads: 0, comm_latency: 1 },
        );
        prop_assert!(matches!(c, Err(SchedError::NoThreads)), "candidates accepted 0: {c:?}");
        Ok(())
    });
}

/// Any positive thread count and latency yields a complete partition:
/// the partitioners must not fail or leave instructions unassigned on
/// extreme-but-legal configurations.
#[test]
fn arbitrary_positive_configs_always_partition() {
    let gen: Gen<(Vec<Stmt>, u32, u64)> = program_gen()
        .zip(ranged(1u32, 9))
        .zip(ranged(0u64, 17))
        .map(|((p, n), lat)| (p, n, lat));
    Checker::new("sched_malformed::positive_configs").cases(32).run(
        &gen,
        |(program, n, lat)| {
            let f = compile(program);
            let pdg = Pdg::build(&f);
            let profile = Profile::uniform(&f, 10);
            let d = dswp::partition(
                &f,
                &pdg,
                &profile,
                &dswp::DswpConfig { num_threads: *n, comm_latency: *lat },
            );
            match d {
                Ok(p) => prop_assert!(p.validate(&f).is_ok(), "dswp left holes"),
                Err(e) => return Err(format!("dswp failed on legal config: {e}")),
            }
            let g = gremio::partition(
                &f,
                &pdg,
                &profile,
                &gremio::GremioConfig { num_threads: *n, comm_latency: *lat },
            );
            match g {
                Ok(p) => prop_assert!(p.validate(&f).is_ok(), "gremio left holes"),
                Err(e) => return Err(format!("gremio failed on legal config: {e}")),
            }
            Ok(())
        },
    );
}
