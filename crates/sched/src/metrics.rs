//! Partition quality metrics and structural checks.

use crate::weights::InstrWeights;
use gmt_ir::{Function, Profile};
use gmt_pdg::{Partition, Pdg};

/// Whether `partition` forms a pipeline over `pdg`: every inter-thread
/// dependence flows from a lower-numbered thread to a higher-numbered
/// one (the DSWP invariant; see Property 1 discussion in §3 — violating
/// it would create dependence cycles among the threads).
pub fn is_pipeline(pdg: &Pdg, partition: &Partition) -> bool {
    pdg.deps().iter().all(|d| {
        let (s, t) = (partition.thread_of(d.src), partition.thread_of(d.dst));
        s <= t
    })
}

/// Whether any dependence cycle crosses threads (GREMIO allows this,
/// DSWP must not).
pub fn has_cyclic_inter_thread_deps(pdg: &Pdg, partition: &Partition) -> bool {
    use gmt_graph::DiGraph;
    // Build the thread graph and look for cycles.
    let mut g = DiGraph::with_nodes(partition.num_threads() as usize);
    for d in pdg.deps() {
        let (s, t) = (partition.thread_of(d.src), partition.thread_of(d.dst));
        if s != t {
            g.add_arc_dedup(
                gmt_graph::NodeId(s.0),
                gmt_graph::NodeId(t.0),
            );
        }
    }
    g.is_cyclic()
}

/// Load-balance summary of a partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Balance {
    /// Dynamic weight per thread.
    pub per_thread: Vec<u64>,
    /// Heaviest thread's share of the total, in percent (100 = one
    /// thread does everything; 50 = perfect 2-thread balance).
    pub max_share_pct: u32,
}

/// Computes the dynamic load balance of `partition` under `profile`.
pub fn balance(f: &Function, profile: &Profile, partition: &Partition) -> Balance {
    let weights = InstrWeights::compute(f, profile);
    let per_thread = partition.dynamic_sizes(|i| weights.weight(i));
    let total: u64 = per_thread.iter().sum();
    let max = per_thread.iter().copied().max().unwrap_or(0);
    let max_share_pct = (max * 100)
        .checked_div(total)
        .map_or(100, |v| u32::try_from(v).unwrap_or(100));
    Balance { per_thread, max_share_pct }
}

/// Count of inter-thread dependence arcs, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CutSummary {
    /// Register dependences crossing threads.
    pub register: usize,
    /// Memory dependences crossing threads.
    pub memory: usize,
    /// Control dependences crossing threads.
    pub control: usize,
}

/// Summarizes the dependences `partition` cuts in `pdg`.
pub fn cut_summary(pdg: &Pdg, partition: &Partition) -> CutSummary {
    let mut s = CutSummary::default();
    for d in pdg.deps() {
        if partition.thread_of(d.src) == partition.thread_of(d.dst) {
            continue;
        }
        match d.kind {
            gmt_pdg::DepKind::Register(_) => s.register += 1,
            gmt_pdg::DepKind::Memory => s.memory += 1,
            gmt_pdg::DepKind::Control => s.control += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::{BinOp, FunctionBuilder};
    use gmt_pdg::ThreadId;

    fn chain() -> (Function, Pdg) {
        let mut b = FunctionBuilder::new("c");
        let x = b.param();
        let y = b.bin(BinOp::Add, x, 1i64);
        let z = b.bin(BinOp::Mul, y, 2i64);
        b.ret(Some(z.into()));
        let f = b.finish().unwrap();
        let pdg = Pdg::build(&f);
        (f, pdg)
    }

    #[test]
    fn forward_split_is_pipeline() {
        let (f, pdg) = chain();
        let mut p = Partition::new(2);
        let instrs: Vec<_> = f.all_instrs().collect();
        p.assign(instrs[0], ThreadId(0));
        p.assign(instrs[1], ThreadId(1));
        p.assign(instrs[2], ThreadId(1));
        assert!(is_pipeline(&pdg, &p));
        assert!(!has_cyclic_inter_thread_deps(&pdg, &p));
    }

    #[test]
    fn backward_split_is_not_pipeline() {
        let (f, pdg) = chain();
        let mut p = Partition::new(2);
        let instrs: Vec<_> = f.all_instrs().collect();
        p.assign(instrs[0], ThreadId(1));
        p.assign(instrs[1], ThreadId(0));
        p.assign(instrs[2], ThreadId(0));
        assert!(!is_pipeline(&pdg, &p));
    }

    #[test]
    fn balance_of_lopsided_partition() {
        let (f, _) = chain();
        let p = Partition::single_threaded(&f);
        let profile = Profile::uniform(&f, 10);
        let b = balance(&f, &profile, &p);
        assert_eq!(b.max_share_pct, 100);
        assert_eq!(b.per_thread.len(), 1);
    }

    #[test]
    fn cut_summary_counts_kinds() {
        let (f, pdg) = chain();
        let mut p = Partition::new(2);
        let instrs: Vec<_> = f.all_instrs().collect();
        p.assign(instrs[0], ThreadId(0));
        p.assign(instrs[1], ThreadId(1));
        p.assign(instrs[2], ThreadId(1));
        let s = cut_summary(&pdg, &p);
        assert_eq!(s.register, 1); // x+1 -> mul crosses
        assert_eq!(s.memory, 0);
    }
}
