//! Instruction weight and latency estimates shared by the partitioners.

use gmt_ir::{BinOp, Function, InstrId, Op, Profile};

/// Estimated occupancy/latency of one instruction in cycles, loosely
/// modeled on Itanium 2 latencies (the machine of the paper's
/// evaluation): 1 for simple ALU ops and branches, longer for
/// multiplies, loads, and FP.
pub fn latency(op: &Op) -> u64 {
    match op {
        Op::Bin(b, ..) => match b {
            BinOp::Mul => 3,
            BinOp::Div | BinOp::Rem => 12,
            BinOp::FAdd | BinOp::FSub => 4,
            BinOp::FMul => 4,
            BinOp::FDiv => 16,
            _ => 1,
        },
        Op::Load(..) => 2,
        Op::Store(..) | Op::Output(_) => 1,
        Op::Produce { .. } | Op::Consume { .. } => 1,
        Op::ProduceSync { .. } | Op::ConsumeSync { .. } => 1,
        _ => 1,
    }
}

/// Per-instruction dynamic weight: execution count (profile weight of
/// the containing block) times latency.
#[derive(Clone, Debug)]
pub struct InstrWeights {
    weights: Vec<u64>,
    exec_counts: Vec<u64>,
}

impl InstrWeights {
    /// Computes weights for every instruction of `f` under `profile`.
    pub fn compute(f: &Function, profile: &Profile) -> InstrWeights {
        let block_w = profile.block_weights(f);
        let mut weights = vec![0u64; f.num_instrs()];
        let mut exec_counts = vec![0u64; f.num_instrs()];
        for b in f.blocks() {
            for i in f.block(b).all_instrs() {
                exec_counts[i.index()] = block_w[b.index()];
                weights[i.index()] = block_w[b.index()].max(1) * latency(f.instr(i));
            }
        }
        InstrWeights { weights, exec_counts }
    }

    /// Dynamic weight (execution count × latency) of `i`.
    pub fn weight(&self, i: InstrId) -> u64 {
        self.weights[i.index()]
    }

    /// Execution count of `i` under the profile.
    pub fn exec_count(&self, i: InstrId) -> u64 {
        self.exec_counts[i.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::{FunctionBuilder, Reg};

    #[test]
    fn latencies_ordered_sensibly() {
        let add = Op::Bin(BinOp::Add, Reg(0), Reg(0).into(), Reg(0).into());
        let mul = Op::Bin(BinOp::Mul, Reg(0), Reg(0).into(), Reg(0).into());
        let div = Op::Bin(BinOp::Div, Reg(0), Reg(0).into(), Reg(0).into());
        assert!(latency(&add) < latency(&mul));
        assert!(latency(&mul) < latency(&div));
    }

    #[test]
    fn weights_scale_with_profile() {
        let mut b = FunctionBuilder::new("w");
        let x = b.const_(3);
        b.ret(Some(x.into()));
        let f = b.finish().unwrap();
        let p = Profile::uniform(&f, 50);
        let w = InstrWeights::compute(&f, &p);
        let c = f.block(f.entry()).instrs[0];
        assert_eq!(w.exec_count(c), 50);
        assert_eq!(w.weight(c), 50);
    }
}
