//! The GREMIO partitioner: Global REgion Multi-threaded Instruction
//! scheduling — the contribution of the MICRO 2007 paper "Global
//! Multi-Threaded Instruction Scheduling" (Ottoni & August).
//!
//! GREMIO "allows cyclic inter-thread dependences and schedules
//! instructions based on their control relations and an estimate of
//! when instructions will be ready to execute" (§2 of the COCO paper).
//! The implementation follows that description with an explicit
//! hierarchical flavor:
//!
//! 1. **Clustering by control relations.** Candidate clusterings are
//!    derived from the PDG's strongly connected components (recurrences
//!    are never split) at three region granularities: per-SCC (fine),
//!    SCCs merged per *innermost* loop, and SCCs merged per *outermost*
//!    loop. Coarser granularities keep whole loop bodies together —
//!    the hierarchy of the original algorithm.
//! 2. **Ready-time list scheduling.** Each candidate clustering is
//!    list-scheduled onto the threads in quasi-topological order of the
//!    (possibly cyclic) cluster dependence graph, placing every cluster
//!    where its profile-weighted finish time is smallest.
//! 3. **Cost-based selection.** Each schedule is scored by estimated
//!    makespan plus the dynamic communication the partition would
//!    induce (cross-thread dependences pay their source's execution
//!    count); the cheapest candidate wins. Fine granularity wins on
//!    single-loop kernels (intra-loop parallelism), coarse granularity
//!    wins when separate regions can run on separate threads — the
//!    shapes the paper's evaluation exhibits.
//!
//! Unlike DSWP, nothing constrains dependences to flow forward: the
//! chosen partition may have cyclic inter-thread dependences.

use crate::weights::InstrWeights;
use crate::SchedError;
use gmt_graph::{DiGraph, NodeId};
use gmt_ir::{Dominators, Function, LoopForest, Profile};
use gmt_pdg::{Partition, Pdg, ThreadId};
use std::collections::HashMap;

/// Configuration of the GREMIO partitioner.
#[derive(Clone, Debug)]
pub struct GremioConfig {
    /// Number of threads to produce.
    pub num_threads: u32,
    /// Estimated one-way communication latency in cycles
    /// (synchronization-array access), used in the ready-time estimate.
    pub comm_latency: u64,
}

impl Default for GremioConfig {
    fn default() -> GremioConfig {
        GremioConfig { num_threads: 2, comm_latency: 1 }
    }
}

/// Region granularity of a candidate clustering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Granularity {
    /// One cluster per (intra-iteration) PDG SCC.
    Scc,
    /// SCCs merged when they start in the same basic block.
    Block,
    /// SCCs merged when their blocks share the same control-dependence
    /// region within the same innermost loop (hammock arms stay whole).
    ControlRegion,
    /// SCCs merged when they share an innermost loop.
    InnermostLoop,
    /// SCCs merged when they share an outermost loop.
    OutermostLoop,
}

/// All granularities, fine to coarse.
const GRANULARITIES: [Granularity; 5] = [
    Granularity::Scc,
    Granularity::Block,
    Granularity::ControlRegion,
    Granularity::InnermostLoop,
    Granularity::OutermostLoop,
];

/// Partitions `f` over `config.num_threads` threads, selecting the
/// best candidate by the analytic throughput score.
///
/// # Errors
///
/// [`SchedError::NoThreads`] when `config.num_threads` is zero.
///
/// ```
/// use gmt_ir::{FunctionBuilder, BinOp, Profile};
/// use gmt_pdg::Pdg;
/// use gmt_sched::gremio;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FunctionBuilder::new("f");
/// let x = b.param();
/// let y = b.bin(BinOp::Mul, x, 3i64);
/// b.output(y);
/// b.ret(None);
/// let f = b.finish()?;
/// let pdg = Pdg::build(&f);
/// let p = gremio::partition(&f, &pdg, &Profile::uniform(&f, 10), &gremio::GremioConfig::default())?;
/// assert!(p.validate(&f).is_ok());
/// # Ok(())
/// # }
/// ```
pub fn partition(
    f: &Function,
    pdg: &Pdg,
    profile: &Profile,
    config: &GremioConfig,
) -> Result<Partition, SchedError> {
    candidates(f, pdg, profile, config)?
        .into_iter()
        .min_by_key(|(s, _)| *s)
        .map(|(_, p)| p)
        .ok_or(SchedError::NoCandidates)
}

/// All candidate partitions GREMIO considers, with their analytic
/// scores: one hill-climbed schedule per region granularity, plus the
/// degenerate everything-on-thread-0 fallback. Exposed so a driver can
/// arbitrate between candidates with a better oracle (e.g. a timed run
/// of the generated code on the train input — profile-guided partition
/// selection).
///
/// # Errors
///
/// [`SchedError::NoThreads`] when `config.num_threads` is zero.
pub fn candidates(
    f: &Function,
    pdg: &Pdg,
    profile: &Profile,
    config: &GremioConfig,
) -> Result<Vec<(u64, Partition)>, SchedError> {
    if config.num_threads == 0 {
        return Err(SchedError::NoThreads);
    }
    let weights = InstrWeights::compute(f, profile);
    let dom = Dominators::compute(f);
    let loops = LoopForest::compute(f, &dom);
    let pdom = gmt_ir::PostDominators::compute(f);
    let cdeps = gmt_ir::ControlDeps::compute(f, &pdom);

    let mut out: Vec<(u64, Partition)> = Vec::new();
    for gran in GRANULARITIES {
        let candidate = schedule(f, pdg, config, &weights, &loops, &cdeps, gran);
        let score = score(f, pdg, &weights, &cdeps, &candidate, config);
        if !out.iter().any(|(_, p)| *p == candidate) {
            out.push((score, candidate));
        }
    }
    // Degenerate fallback: everything on thread 0.
    let mut single = Partition::new(config.num_threads);
    for i in f.all_instrs() {
        single.assign(i, ThreadId(0));
    }
    let score = score(f, pdg, &weights, &cdeps, &single, config);
    if !out.iter().any(|(_, p)| *p == single) {
        out.push((score, single));
    }
    Ok(out)
}

/// Builds and list-schedules one candidate clustering.
fn schedule(
    f: &Function,
    pdg: &Pdg,
    config: &GremioConfig,
    weights: &InstrWeights,
    loops: &LoopForest,
    cdeps: &gmt_ir::ControlDeps,
    gran: Granularity,
) -> Partition {
    let n = config.num_threads as usize;
    // Cluster over the intra-iteration dependence graph: carried arcs
    // do not constrain the schedule (cyclic inter-thread dependences
    // are GREMIO's defining freedom), but they still cost communication
    // and are accounted by `score`.
    let (g, _index) = pdg.as_digraph_filtered(|d| !d.loop_carried);
    let cond = g.condensation();
    let nodes = pdg.nodes();

    // ---- merge SCCs into region clusters.
    // cluster_of[scc] = cluster id.
    let scc_count = cond.components.len();
    let mut cluster_of: Vec<usize> = (0..scc_count).collect();
    if gran != Granularity::Scc {
        // Region key of an SCC, from its first instruction's block.
        let mut key_to_cluster: HashMap<u64, usize> = HashMap::new();
        for (scc_idx, scc) in cond.components.iter().enumerate() {
            let block = f.block_of(nodes[scc.nodes[0].index()]);
            let key: Option<u64> = match gran {
                Granularity::Scc => unreachable!(),
                Granularity::Block => Some(block.0 as u64),
                Granularity::ControlRegion => {
                    // Key = hash of the control-dependence set (branch
                    // instruction ids and edges) — control-equivalent
                    // blocks merge, so hammock arms stay whole.
                    let mut cds: Vec<(u32, usize)> = cdeps
                        .of_block(block)
                        .iter()
                        .map(|cd| (cd.branch.0, cd.edge))
                        .collect();
                    cds.sort_unstable();
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for (b, e) in cds {
                        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
                        h = (h ^ e as u64).wrapping_mul(0x1000_0000_01b3);
                    }
                    Some(h)
                }
                Granularity::InnermostLoop | Granularity::OutermostLoop => {
                    let mut li = loops.innermost[block.index()];
                    if gran == Granularity::OutermostLoop {
                        while let Some(k) = li {
                            match loops.loops[k].parent {
                                Some(p) => li = Some(p),
                                None => break,
                            }
                        }
                    }
                    li.map(|k| k as u64)
                }
            };
            if let Some(k) = key {
                let c = *key_to_cluster.entry(k).or_insert(scc_idx);
                cluster_of[scc_idx] = c;
            }
        }
    }
    // Normalize cluster ids to 0..m.
    let mut remap: HashMap<usize, usize> = HashMap::new();
    for c in cluster_of.iter_mut() {
        let next = remap.len();
        *c = *remap.entry(*c).or_insert(next);
    }
    let m = remap.len();

    // ---- cluster dependence graph (possibly cyclic) and weights.
    let mut cg = DiGraph::with_nodes(m);
    let mut cluster_weight = vec![0u64; m];
    let mut cluster_count = vec![0u64; m]; // max exec count inside
    for (scc_idx, scc) in cond.components.iter().enumerate() {
        let c = cluster_of[scc_idx];
        for &k in &scc.nodes {
            let i = nodes[k.index()];
            cluster_weight[c] += weights.weight(i);
            cluster_count[c] = cluster_count[c].max(weights.exec_count(i));
        }
    }
    let mut instr_cluster: HashMap<gmt_ir::InstrId, usize> = HashMap::new();
    for (scc_idx, scc) in cond.components.iter().enumerate() {
        for &k in &scc.nodes {
            instr_cluster.insert(nodes[k.index()], cluster_of[scc_idx]);
        }
    }
    for d in pdg.deps() {
        let (cs, ct) = (instr_cluster[&d.src], instr_cluster[&d.dst]);
        if cs != ct {
            cg.add_arc_dedup(NodeId(cs as u32), NodeId(ct as u32));
        }
    }

    // ---- list scheduling in quasi-topological order; back arcs are
    // ignored for ready times (cyclic deps allowed).
    let order = cg.quasi_topological_order();
    let mut position = vec![0usize; m];
    for (p, &c) in order.iter().enumerate() {
        position[c.index()] = p;
    }
    let mut thread_free = vec![0u64; n];
    let mut finish = vec![0u64; m];
    let mut placed: Vec<Option<ThreadId>> = vec![None; m];
    for &c in &order {
        let ci = c.index();
        let w = cluster_weight[ci];
        let (mut best_t, mut best_finish) = (0usize, u64::MAX);
        #[allow(clippy::needless_range_loop)]
        for t in 0..n {
            let mut ready = thread_free[t];
            for &p in cg.preds(c) {
                let pi = p.index();
                // Back arc (pred later in quasi-topo): skip.
                let Some(pt) = placed[pi] else { continue };
                let arrival = if pt.index() == t {
                    finish[pi]
                } else {
                    finish[pi] + cluster_count[pi].max(1) * config.comm_latency
                };
                ready = ready.max(arrival);
            }
            let fin = ready + w;
            if fin < best_finish {
                best_finish = fin;
                best_t = t;
            }
        }
        placed[ci] = Some(ThreadId(best_t as u32));
        finish[ci] = best_finish;
        thread_free[best_t] = best_finish;
    }

    // ---- hill-climbing refinement. The list schedule models the
    // intra-iteration critical path, which chains serial stages onto
    // one thread; decoupled execution overlaps stages across outer
    // iterations (pipeline parallelism), which the throughput-style
    // `score` captures. Move clusters between threads while the score
    // improves.
    let mut assignment: Vec<ThreadId> = placed.iter().map(|p| p.expect("placed")).collect();
    let build = |assignment: &[ThreadId]| {
        let mut p = Partition::new(config.num_threads);
        for (scc_idx, scc) in cond.components.iter().enumerate() {
            let t = assignment[cluster_of[scc_idx]];
            for &k in &scc.nodes {
                p.assign(nodes[k.index()], t);
            }
        }
        p
    };
    let mut current = build(&assignment);
    let mut current_score = score(f, pdg, weights, cdeps, &current, config);
    // Score memo keyed by the cluster→thread assignment. The climb
    // revisits the same assignments across passes of the outer loop
    // (every non-improving move is retried each round); `score` is a
    // pure function of the assignment, so a hit skips both the
    // partition rebuild and the rescoring without changing any
    // decision.
    let memo_key = |a: &[ThreadId]| a.iter().map(|t| t.0).collect::<Vec<u32>>();
    let mut memo: HashMap<Vec<u32>, u64> = HashMap::new();
    memo.insert(memo_key(&assignment), current_score);
    let mut improved = true;
    while improved {
        improved = false;
        for c in 0..m {
            let original = assignment[c];
            for t in 0..n {
                let t = ThreadId(t as u32);
                if t == original {
                    continue;
                }
                assignment[c] = t;
                let key = memo_key(&assignment);
                let s = match memo.get(&key) {
                    Some(&s) => s,
                    None => {
                        let candidate = build(&assignment);
                        let s = score(f, pdg, weights, cdeps, &candidate, config);
                        memo.insert(key, s);
                        s
                    }
                };
                if s < current_score {
                    current_score = s;
                    current = build(&assignment);
                    improved = true;
                } else {
                    assignment[c] = original;
                }
            }
        }
    }
    current
}

/// Scores a candidate partition with a steady-state *throughput*
/// model: every thread's dynamic load is its computation plus the
/// communication instructions it must execute — produce/consume pairs
/// for its cross-thread dependences (at the cheapest point on each
/// def→use path, i.e. assuming COCO-quality placement) and the
/// operand-consume + duplicated branch for every foreign branch its
/// *own instructions* make relevant (a cost no placement can remove).
/// The score is the heaviest thread's load: queue decoupling hides
/// communication latency, so occupancy — not latency — is what bounds
/// pipeline throughput.
fn score(
    f: &Function,
    pdg: &Pdg,
    weights: &InstrWeights,
    cdeps: &gmt_ir::ControlDeps,
    partition: &Partition,
    config: &GremioConfig,
) -> u64 {
    let mut load = partition.dynamic_sizes(|i| weights.weight(i));
    let lat = config.comm_latency.max(1);

    // Communication pairs: cheapest-point estimate per (src, target).
    let mut best_site: HashMap<(gmt_ir::InstrId, u32), u64> = HashMap::new();
    for d in pdg.deps() {
        let (s, t) = (partition.thread_of(d.src), partition.thread_of(d.dst));
        if s == t {
            continue;
        }
        let cost = weights
            .exec_count(d.src)
            .min(weights.exec_count(d.dst))
            .max(1);
        best_site
            .entry((d.src, t.0))
            .and_modify(|c| *c = (*c).max(cost))
            .or_insert(cost);
    }
    for (&(src, t), &c) in &best_site {
        load[partition.thread_of(src).index()] += c * lat;
        load[t as usize] += c * lat;
    }

    // Intrinsic control replication per thread: the consume of the
    // operand plus the duplicated branch itself (2 instructions), and
    // the produce on the owning thread.
    let nt = partition.num_threads() as usize;
    for t_idx in 0..nt {
        let t = ThreadId(t_idx as u32);
        let mut need = vec![false; f.num_blocks()];
        for i in f.all_instrs() {
            if partition.thread_of(i) == t {
                need[f.block_of(i).index()] = true;
            }
        }
        let mut relevant: std::collections::BTreeSet<gmt_ir::InstrId> =
            std::collections::BTreeSet::new();
        let mut work: Vec<gmt_ir::BlockId> =
            f.blocks().filter(|b| need[b.index()]).collect();
        while let Some(b) = work.pop() {
            for cd in cdeps.of_block(b) {
                if relevant.insert(cd.branch) {
                    let bb = f.block_of(cd.branch);
                    if !need[bb.index()] {
                        need[bb.index()] = true;
                        work.push(bb);
                    }
                }
            }
        }
        for br in relevant {
            if partition.thread_of(br) != t {
                let c = weights.exec_count(br).max(1) * lat;
                load[t_idx] += 2 * c;
                load[partition.thread_of(br).index()] += c;
            }
        }
    }
    load.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::{BinOp, FunctionBuilder};

    /// Two independent reduction loops over disjoint arrays — ideal for
    /// GREMIO: each loop goes to its own thread, no communication in
    /// steady state.
    fn two_independent_loops() -> (Function, Profile) {
        let mut b = FunctionBuilder::new("indep");
        let n = b.param();
        let a = b.object("a", 64);
        let c = b.object("c", 64);
        let i = b.fresh_reg();
        let s1 = b.fresh_reg();
        let j = b.fresh_reg();
        let s2 = b.fresh_reg();
        let h1 = b.block("h1");
        let b1 = b.block("b1");
        let h2 = b.block("h2");
        let b2 = b.block("b2");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.const_into(s1, 0);
        b.const_into(j, 0);
        b.const_into(s2, 0);
        b.jump(h1);
        b.switch_to(h1);
        let c1 = b.bin(BinOp::Lt, i, n);
        b.branch(c1, b1, h2);
        b.switch_to(b1);
        let pa = b.lea(a, 0);
        let ea = b.bin(BinOp::Add, pa, i);
        let va = b.load(ea, 0);
        b.bin_into(BinOp::Add, s1, s1, va);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h1);
        b.switch_to(h2);
        let c2 = b.bin(BinOp::Lt, j, n);
        b.branch(c2, b2, exit);
        b.switch_to(b2);
        let pc = b.lea(c, 0);
        let ec = b.bin(BinOp::Add, pc, j);
        let vc = b.load(ec, 0);
        b.bin_into(BinOp::Mul, s2, s2, vc);
        b.bin_into(BinOp::Add, j, j, 1i64);
        b.jump(h2);
        b.switch_to(exit);
        let r = b.bin(BinOp::Add, s1, s2);
        b.ret(Some(r.into()));
        let mut f = b.finish().unwrap();
        gmt_ir::split_critical_edges(&mut f);
        let profile = Profile::uniform(&f, 64);
        (f, profile)
    }

    #[test]
    fn valid_total_assignment() {
        let (f, profile) = two_independent_loops();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &GremioConfig::default()).unwrap();
        assert!(p.validate(&f).is_ok());
    }

    #[test]
    fn independent_loops_land_on_different_threads() {
        let (f, profile) = two_independent_loops();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &GremioConfig::default()).unwrap();
        let sizes = p.static_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "both threads should get work: {sizes:?}");
        // The two loop bodies must not share a thread: find the two
        // loads and compare their threads.
        let loads: Vec<_> = f
            .all_instrs()
            .filter(|&i| f.instr(i).is_mem_read())
            .collect();
        assert_eq!(loads.len(), 2);
        assert_ne!(
            p.thread_of(loads[0]),
            p.thread_of(loads[1]),
            "each loop on its own thread"
        );
    }

    #[test]
    fn loop_bodies_stay_whole_when_loops_are_independent() {
        let (f, profile) = two_independent_loops();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &GremioConfig::default()).unwrap();
        // Every instruction of block b1 shares b1's thread (the loop
        // body was not scattered).
        for blk in [gmt_ir::BlockId(2), gmt_ir::BlockId(4)] {
            let threads: std::collections::BTreeSet<_> = f
                .block(blk)
                .all_instrs()
                .map(|i| p.thread_of(i))
                .collect();
            assert_eq!(threads.len(), 1, "block {blk:?} scattered: {threads:?}");
        }
    }

    #[test]
    fn single_thread_config_degenerates() {
        let (f, profile) = two_independent_loops();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &GremioConfig { num_threads: 1, comm_latency: 1 }).unwrap();
        assert_eq!(p.static_sizes()[0], f.placed_instr_count());
    }

    #[test]
    fn recurrences_not_split() {
        let (f, profile) = two_independent_loops();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &GremioConfig::default()).unwrap();
        let (g, index) = pdg.as_digraph();
        let cond = g.condensation();
        for d in pdg.deps() {
            let same_scc = cond.component_of[index[&d.src].index()]
                == cond.component_of[index[&d.dst].index()];
            if same_scc {
                assert_eq!(p.thread_of(d.src), p.thread_of(d.dst), "SCC split: {d:?}");
            }
        }
    }
}
