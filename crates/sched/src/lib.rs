//! Global multi-threaded (GMT) instruction-scheduling partitioners.
//!
//! "After the PDG is constructed, a GMT scheduler needs to assign
//! instructions to threads... This phase, the partitioner, is where the
//! GMT scheduling techniques differ" (§2 of the COCO paper). Two
//! published partitioners are implemented:
//!
//! - [`dswp`] — Decoupled Software Pipelining \[16\]: SCC condensation of
//!   the PDG cut into contiguous pipeline stages; dependences flow in
//!   one direction only;
//! - [`gremio`] — GREMIO (MICRO 2007): clustered list scheduling by
//!   estimated ready time over the loop hierarchy; cyclic inter-thread
//!   dependences allowed.
//!
//! Both plug into the same MTCG/COCO back end — the framework shape of
//! Figure 2.
//!
//! # Example
//!
//! ```
//! use gmt_ir::{FunctionBuilder, BinOp, Profile};
//! use gmt_pdg::Pdg;
//! use gmt_sched::{dswp, gremio};
//!
//! # fn main() -> Result<(), gmt_ir::VerifyError> {
//! let mut b = FunctionBuilder::new("f");
//! let x = b.param();
//! let y = b.bin(BinOp::Mul, x, 3i64);
//! b.output(y);
//! b.ret(None);
//! let f = b.finish()?;
//! let pdg = Pdg::build(&f);
//! let profile = Profile::uniform(&f, 10);
//! let pipe = dswp::partition(&f, &pdg, &profile, &dswp::DswpConfig::default()).unwrap();
//! let listed = gremio::partition(&f, &pdg, &profile, &gremio::GremioConfig::default()).unwrap();
//! assert!(pipe.validate(&f).is_ok());
//! assert!(listed.validate(&f).is_ok());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dswp;
pub mod gremio;
pub mod metrics;
pub mod weights;

pub use metrics::{balance, cut_summary, has_cyclic_inter_thread_deps, is_pipeline, Balance, CutSummary};

/// Partitioner failures on untrusted configurations or inputs.
///
/// The partitioners used to panic on these; they are now reported so
/// drivers feeding arbitrary configurations (harness sweeps, property
/// tests) get a diagnosis instead of an abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// The configuration asked for zero threads.
    NoThreads,
    /// The PDG's SCC condensation could not be ordered topologically
    /// (an internal invariant violation in the dependence graph).
    CyclicCondensation,
    /// No candidate partition was produced.
    NoCandidates,
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoThreads => write!(f, "partitioner configured with zero threads"),
            SchedError::CyclicCondensation => {
                write!(f, "PDG condensation is not acyclic")
            }
            SchedError::NoCandidates => write!(f, "no candidate partition produced"),
        }
    }
}

impl std::error::Error for SchedError {}
