//! The DSWP partitioner: Decoupled Software Pipelining \[16\].
//!
//! DSWP "creates a pipeline of threads, among which the dependences
//! only flow in one direction" (§2). The algorithm:
//!
//! 1. condense the PDG by strongly connected components — every
//!    dependence recurrence must live inside one stage, otherwise the
//!    pipeline property breaks;
//! 2. lay the SCCs out in topological order, optionally merged into
//!    coarser region clusters (per block / per innermost loop) so a
//!    stage boundary does not slice through the middle of a region;
//! 3. choose the stage cut that minimizes the steady-state throughput
//!    bound: the heaviest stage's computation plus the communication
//!    instructions the cut induces (values crossing forward plus
//!    replicated-branch overhead).
//!
//! Because stages are contiguous chunks of a topological order, every
//! inter-thread dependence flows from an earlier stage to a later one —
//! the defining DSWP invariant, checked by
//! [`is_pipeline`](crate::metrics::is_pipeline).

use crate::weights::InstrWeights;
use crate::SchedError;
use gmt_ir::{ControlDeps, Dominators, Function, LoopForest, PostDominators, Profile};
use gmt_pdg::{Partition, Pdg, ThreadId};
use std::collections::HashMap;

/// Configuration of the DSWP partitioner.
#[derive(Clone, Debug)]
pub struct DswpConfig {
    /// Number of pipeline stages (threads) to produce.
    pub num_threads: u32,
    /// Estimated per-value communication occupancy in cycles.
    pub comm_latency: u64,
}

impl Default for DswpConfig {
    fn default() -> DswpConfig {
        DswpConfig { num_threads: 2, comm_latency: 1 }
    }
}

/// Partitions `f` into a pipeline of `config.num_threads` stages.
///
/// # Errors
///
/// [`SchedError::NoThreads`] when `config.num_threads` is zero.
///
/// ```
/// use gmt_ir::{FunctionBuilder, BinOp, Profile};
/// use gmt_pdg::Pdg;
/// use gmt_sched::{dswp, is_pipeline};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = FunctionBuilder::new("f");
/// let x = b.param();
/// let y = b.bin(BinOp::Mul, x, 3i64);
/// b.output(y);
/// b.ret(None);
/// let f = b.finish()?;
/// let pdg = Pdg::build(&f);
/// let p = dswp::partition(&f, &pdg, &Profile::uniform(&f, 10), &dswp::DswpConfig::default())?;
/// assert!(is_pipeline(&pdg, &p));
/// # Ok(())
/// # }
/// ```
pub fn partition(
    f: &Function,
    pdg: &Pdg,
    profile: &Profile,
    config: &DswpConfig,
) -> Result<Partition, SchedError> {
    if config.num_threads == 0 {
        return Err(SchedError::NoThreads);
    }
    let weights = InstrWeights::compute(f, profile);
    let dom = Dominators::compute(f);
    let loops = LoopForest::compute(f, &dom);
    let pdom = PostDominators::compute(f);
    let cdeps = ControlDeps::compute(f, &pdom);

    let (g, _index) = pdg.as_digraph();
    let cond = g.condensation();
    let nodes = pdg.nodes();
    let topo = cond
        .dag
        .topological_order()
        .ok_or(SchedError::CyclicCondensation)?;

    // Candidate cluster sequences: SCCs in topological order, merged at
    // several granularities. A merge key groups *adjacent-in-topo*
    // SCCs that share the region; merging only adjacent runs preserves
    // the topological sequencing needed for contiguous cuts.
    let region_key = |scc_idx: usize, by_loop: bool| -> u64 {
        let block = f.block_of(nodes[cond.components[scc_idx].nodes[0].index()]);
        if by_loop {
            loops.innermost[block.index()].map_or(u64::MAX, |l| l as u64)
        } else {
            u64::from(block.0)
        }
    };

    let mut best: Option<(u64, Partition)> = None;
    for granularity in [None, Some(false), Some(true)] {
        // Build the cluster sequence.
        let mut seq: Vec<Vec<usize>> = Vec::new(); // clusters of scc indices
        let mut last_key: Option<u64> = None;
        for &c in &topo {
            let scc_idx = c.index();
            let key = granularity.map(|by_loop| region_key(scc_idx, by_loop));
            match (key, last_key) {
                (Some(k), Some(lk)) if k == lk => {
                    seq.last_mut().expect("nonempty").push(scc_idx);
                }
                _ => seq.push(vec![scc_idx]),
            }
            last_key = key;
        }
        // Evaluate every contiguous cut of the sequence.
        for p in candidate_partitions(f, &seq, &cond, nodes, config) {
            let s = stage_score(f, pdg, &weights, &cdeps, &p, config);
            if best.as_ref().is_none_or(|(bs, _)| s < *bs) {
                best = Some((s, p));
            }
        }
    }
    best.map(|(_, p)| p).ok_or(SchedError::NoCandidates)
}

/// Enumerates pipeline partitions over the cluster sequence: for two
/// stages, every cut position; for more stages, a weight-balanced
/// greedy chunking (single candidate).
fn candidate_partitions(
    f: &Function,
    seq: &[Vec<usize>],
    cond: &gmt_graph::Condensation,
    nodes: &[gmt_ir::InstrId],
    config: &DswpConfig,
) -> Vec<Partition> {
    let n = config.num_threads;
    let build = |stage_of_cluster: &dyn Fn(usize) -> u32| -> Partition {
        let mut p = Partition::new(n);
        for (ci, cluster) in seq.iter().enumerate() {
            let t = ThreadId(stage_of_cluster(ci).min(n - 1));
            for &scc_idx in cluster {
                for &k in &cond.components[scc_idx].nodes {
                    p.assign(nodes[k.index()], t);
                }
            }
        }
        p
    };
    let _ = f;
    if n == 1 || seq.len() < 2 {
        return vec![build(&|_| 0)];
    }
    if n == 2 {
        return (1..seq.len())
            .map(|cut| build(&move |ci| u32::from(ci >= cut)))
            .collect();
    }
    // Deeper pipelines: enumerate all (n-1)-cut combinations when the
    // search space is small, otherwise fall back to one greedy
    // equal-weight chunking.
    let cuts_needed = (n - 1) as usize;
    let positions = seq.len().saturating_sub(1);
    let combos = n_choose_k(positions, cuts_needed);
    if positions >= cuts_needed && combos <= 3000 {
        let mut out = Vec::new();
        let mut cut = (1..=cuts_needed).collect::<Vec<usize>>();
        loop {
            let cut_now = cut.clone();
            out.push(build(&move |ci| {
                cut_now.iter().filter(|&&c| ci >= c).count() as u32
            }));
            // Next combination of `cuts_needed` positions in 1..=positions.
            let mut k = cuts_needed;
            loop {
                if k == 0 {
                    return out;
                }
                k -= 1;
                if cut[k] < positions - (cuts_needed - 1 - k) {
                    cut[k] += 1;
                    for j in k + 1..cuts_needed {
                        cut[j] = cut[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }
    // Greedy equal-weight chunking fallback.
    let cluster_sizes: Vec<usize> = seq
        .iter()
        .map(|cluster| cluster.iter().map(|&s| cond.components[s].nodes.len()).sum())
        .collect();
    let total: usize = cluster_sizes.iter().sum();
    let per = total.div_ceil(n as usize).max(1);
    let mut acc = 0usize;
    let stages: Vec<u32> = cluster_sizes
        .iter()
        .map(|&sz| {
            let stage = (acc / per) as u32;
            acc += sz;
            stage
        })
        .collect();
    vec![build(&move |ci| stages[ci])]
}

/// Binomial coefficient, saturating (used only to bound enumeration).
fn n_choose_k(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let mut acc: u64 = 1;
    for j in 0..k {
        acc = acc.saturating_mul((n - j) as u64) / (j as u64 + 1);
        if acc > 1_000_000 {
            return u64::MAX;
        }
    }
    acc
}

/// Steady-state throughput score, mirroring the GREMIO model: heaviest
/// stage load including communication occupancy and replicated-branch
/// overhead.
fn stage_score(
    f: &Function,
    pdg: &Pdg,
    weights: &InstrWeights,
    cdeps: &ControlDeps,
    partition: &Partition,
    config: &DswpConfig,
) -> u64 {
    let mut load = partition.dynamic_sizes(|i| weights.weight(i));
    let lat = config.comm_latency.max(1);
    let mut best_site: HashMap<(gmt_ir::InstrId, u32), u64> = HashMap::new();
    for d in pdg.deps() {
        let (s, t) = (partition.thread_of(d.src), partition.thread_of(d.dst));
        if s == t {
            continue;
        }
        let cost = weights
            .exec_count(d.src)
            .min(weights.exec_count(d.dst))
            .max(1);
        best_site
            .entry((d.src, t.0))
            .and_modify(|c| *c = (*c).max(cost))
            .or_insert(cost);
    }
    for (&(src, t), &c) in &best_site {
        load[partition.thread_of(src).index()] += c * lat;
        load[t as usize] += c * lat;
    }
    let nt = partition.num_threads() as usize;
    for t_idx in 0..nt {
        let t = ThreadId(t_idx as u32);
        let mut need = vec![false; f.num_blocks()];
        for i in f.all_instrs() {
            if partition.thread_of(i) == t {
                need[f.block_of(i).index()] = true;
            }
        }
        let mut relevant: std::collections::BTreeSet<gmt_ir::InstrId> =
            std::collections::BTreeSet::new();
        let mut work: Vec<gmt_ir::BlockId> = f.blocks().filter(|b| need[b.index()]).collect();
        while let Some(b) = work.pop() {
            for cd in cdeps.of_block(b) {
                if relevant.insert(cd.branch) {
                    let bb = f.block_of(cd.branch);
                    if !need[bb.index()] {
                        need[bb.index()] = true;
                        work.push(bb);
                    }
                }
            }
        }
        for br in relevant {
            if partition.thread_of(br) != t {
                let c = weights.exec_count(br).max(1) * lat;
                load[t_idx] += 2 * c;
                load[partition.thread_of(br).index()] += c;
            }
        }
    }
    load.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::is_pipeline;
    use gmt_ir::{BinOp, FunctionBuilder};

    /// Classic DSWP loop: a cheap recurrence feeding an expensive pure
    /// consumer — the recurrence and the consumer must split cleanly.
    fn producer_consumer_loop() -> (Function, Profile) {
        let mut b = FunctionBuilder::new("pc");
        let n = b.param();
        let arr = b.object("arr", 128);
        let i = b.fresh_reg();
        let s = b.fresh_reg();
        let h = b.block("h");
        let body = b.block("body");
        let exit = b.block("exit");
        b.const_into(i, 0);
        b.const_into(s, 0);
        b.jump(h);
        b.switch_to(h);
        let c = b.bin(BinOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let base = b.lea(arr, 0);
        let addr = b.bin(BinOp::Add, base, i);
        let v = b.load(addr, 0);
        let t1 = b.bin(BinOp::Mul, v, v);
        let t2 = b.bin(BinOp::Mul, t1, 3i64);
        b.bin_into(BinOp::Add, s, s, t2);
        b.bin_into(BinOp::Add, i, i, 1i64);
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(s.into()));
        let mut f = b.finish().unwrap();
        gmt_ir::split_critical_edges(&mut f);
        let profile = Profile::uniform(&f, 100);
        (f, profile)
    }

    #[test]
    fn produces_a_valid_pipeline() {
        let (f, profile) = producer_consumer_loop();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &DswpConfig::default()).unwrap();
        assert!(p.validate(&f).is_ok());
        assert!(is_pipeline(&pdg, &p), "dependences must flow forward only");
    }

    #[test]
    fn both_stages_nonempty_on_balanced_loop() {
        let (f, profile) = producer_consumer_loop();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &DswpConfig::default()).unwrap();
        let sizes = p.static_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
    }

    #[test]
    fn recurrences_never_split_or_flow_backward() {
        let (f, profile) = producer_consumer_loop();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &DswpConfig::default()).unwrap();
        for d in pdg.deps() {
            assert!(p.thread_of(d.src) <= p.thread_of(d.dst), "dep {d:?} flows backward");
        }
        let (g, index) = pdg.as_digraph();
        let cond = g.condensation();
        for d in pdg.deps() {
            if cond.component_of[index[&d.src].index()] == cond.component_of[index[&d.dst].index()]
            {
                assert_eq!(p.thread_of(d.src), p.thread_of(d.dst));
            }
        }
    }

    #[test]
    fn more_threads_than_sccs_is_fine() {
        let mut b = FunctionBuilder::new("tiny");
        let x = b.const_(1);
        b.ret(Some(x.into()));
        let f = b.finish().unwrap();
        let pdg = Pdg::build(&f);
        let profile = Profile::uniform(&f, 1);
        let p = partition(&f, &pdg, &profile, &DswpConfig { num_threads: 4, comm_latency: 1 }).unwrap();
        assert!(p.validate(&f).is_ok());
        assert!(is_pipeline(&pdg, &p));
    }

    #[test]
    fn single_stage_degenerates_to_single_thread() {
        let (f, profile) = producer_consumer_loop();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &DswpConfig { num_threads: 1, comm_latency: 1 }).unwrap();
        assert_eq!(p.static_sizes()[0], f.placed_instr_count());
    }

    #[test]
    fn four_stage_pipeline_still_valid() {
        let (f, profile) = producer_consumer_loop();
        let pdg = Pdg::build(&f);
        let p = partition(&f, &pdg, &profile, &DswpConfig { num_threads: 4, comm_latency: 1 }).unwrap();
        assert!(p.validate(&f).is_ok());
        assert!(is_pipeline(&pdg, &p));
    }
}
