//! Property tests feeding MTCG untrusted inputs: partial partitions
//! and corrupt communication plans over random programs. Nothing may
//! panic; every malformed input must come back as an [`MtcgError`].
//!
//! Replay a failure with `GMT_TESTKIT_SEED=<seed from the message>`.

use gmt_integration_tests::{compile, program_gen, seeded_partition, Stmt};
use gmt_ir::{BlockId, InstrId, Reg};
use gmt_mtcg::{CommKind, CommPlan, CommPoint, MtcgError};
use gmt_pdg::{Partition, Pdg, ThreadId};
use gmt_testkit::{full_u64, prop_assert, ranged, Checker, Gen};

/// Deletes a pseudo-random nonempty subset of assignments by building a
/// fresh partition that skips them.
fn holed_partition(f: &gmt_ir::Function, n: u32, seed: u64) -> Partition {
    let full = seeded_partition(f, n, seed);
    let total = f.num_instrs();
    let mut p = Partition::new(n);
    for (k, i) in f.all_instrs().enumerate() {
        // Always drop instruction `seed % total`; drop others sparsely.
        let drop = k == (seed % total as u64) as usize || seed.rotate_left(k as u32) % 7 == 0;
        if !drop {
            p.assign(i, full.thread_of(i));
        }
    }
    p
}

/// A partition with unassigned instructions is rejected with
/// `Unassigned`, by both the baseline planner and code generation.
#[test]
fn partial_partitions_are_rejected() {
    let gen: Gen<(Vec<Stmt>, u64, u32)> =
        program_gen().zip(full_u64()).zip(ranged(2u32, 4)).map(|((p, s), n)| (p, s, n));
    Checker::new("mtcg_malformed::partial_partitions").cases(32).run(
        &gen,
        |(program, seed, n)| {
            let f = compile(program);
            let partition = holed_partition(&f, *n, *seed);
            if partition.validate(&f).is_ok() {
                return Ok(()); // subset happened to be empty: nothing to test
            }
            let pdg = Pdg::build(&f);
            let plan = gmt_mtcg::baseline_plan(&f, &pdg, &partition);
            prop_assert!(
                matches!(plan, Err(MtcgError::Unassigned(_))),
                "baseline_plan accepted holes: {plan:?}"
            );
            let out = gmt_mtcg::generate(&f, &pdg, &partition);
            prop_assert!(
                matches!(out, Err(MtcgError::Unassigned(_))),
                "generate accepted holes: {out:?}"
            );
            Ok(())
        },
    );
}

/// Plans naming threads the partition does not have are rejected with
/// `PlanThreadOutOfRange` before any indexing can panic.
#[test]
fn plan_thread_out_of_range_rejected() {
    let gen: Gen<(Vec<Stmt>, u64)> = program_gen().zip(full_u64());
    Checker::new("mtcg_malformed::plan_thread_oob").cases(24).run(&gen, |(program, seed)| {
        let f = compile(program);
        let partition = seeded_partition(&f, 2, *seed);
        let ghost = ThreadId(2 + (seed % 7) as u32); // partition has threads 0..2
        let mut plan = CommPlan::new(ghost.0 + 1);
        plan.add_point(
            CommKind::Register(Reg(0)),
            ThreadId(0),
            ghost,
            CommPoint::BlockStart(f.entry()),
        );
        let out = gmt_mtcg::generate_with_plan(&f, &partition, plan);
        prop_assert!(
            matches!(out, Err(MtcgError::PlanThreadOutOfRange { thread, .. }) if thread == ghost),
            "ghost thread accepted: {out:?}"
        );
        Ok(())
    });
}

/// Plans placing communication at nonexistent instructions or blocks
/// are rejected with `PlanPointOutOfRange`.
#[test]
fn plan_point_out_of_range_rejected() {
    let gen: Gen<(Vec<Stmt>, u64, u32)> =
        program_gen().zip(full_u64()).zip(ranged(0u32, 3)).map(|((p, s), k)| (p, s, k));
    Checker::new("mtcg_malformed::plan_point_oob").cases(24).run(&gen, |(program, seed, k)| {
        let f = compile(program);
        let partition = seeded_partition(&f, 2, *seed);
        let beyond = f.num_instrs() as u32 + 1 + (seed % 100) as u32;
        let point = match k {
            0 => CommPoint::Before(InstrId(beyond)),
            1 => CommPoint::After(InstrId(beyond)),
            _ => CommPoint::BlockStart(BlockId(f.num_blocks() as u32 + 1)),
        };
        let mut plan = CommPlan::new(2);
        plan.add_point(CommKind::Memory, ThreadId(0), ThreadId(1), point);
        let out = gmt_mtcg::generate_with_plan(&f, &partition, plan);
        prop_assert!(
            matches!(out, Err(MtcgError::PlanPointOutOfRange(p)) if p == point),
            "out-of-range point accepted: {out:?}"
        );
        Ok(())
    });
}

/// Querying relevant branches of an out-of-range thread is total (the
/// empty set), so downstream passes cannot index out of bounds.
#[test]
fn relevant_branch_query_is_total() {
    let plan = CommPlan::new(2);
    assert!(plan.relevant_branches(ThreadId(17)).is_empty());
    assert_eq!(plan.all_relevant_branches().len(), 2);
}
