//! End-to-end MTCG correctness: for a range of CFG shapes and
//! partitions, the multi-threaded code must produce the same return
//! value, output trace, and final memory as the single-threaded
//! original.

use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_ir::{BinOp, Function, FunctionBuilder, InstrId, Op};
use gmt_pdg::{Partition, Pdg, ThreadId};

fn exec_config() -> ExecConfig {
    ExecConfig { max_steps: 10_000_000 }
}

/// Runs both versions and compares observable behavior.
fn assert_equivalent(f: &Function, partition: &Partition, args: &[i64]) {
    let single = run(f, args, &exec_config()).expect("single-threaded runs");
    let pdg = Pdg::build(f);
    let out = gmt_mtcg::generate(f, &pdg, partition).expect("mtcg");
    for qcap in [1usize, 32] {
        let mt = run_mt(
            &out.threads,
            args,
            |_, _| {},
            &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: qcap },
            &exec_config(),
        )
        .unwrap_or_else(|e| panic!("mt run failed (qcap {qcap}): {e}\nplan: {:?}", out.plan));
        assert_eq!(mt.return_value, single.return_value, "return value (qcap {qcap})");
        assert_eq!(mt.output, single.output, "output trace (qcap {qcap})");
        assert_eq!(mt.memory.cells(), single.memory.cells(), "final memory (qcap {qcap})");
    }
}

/// Round-robin partition of all instructions over `n` threads.
fn round_robin(f: &Function, n: u32) -> Partition {
    let mut p = Partition::new(n);
    for (k, i) in f.all_instrs().enumerate() {
        p.assign(i, ThreadId((k as u32) % n));
    }
    p
}

/// Partition assigning instructions by a predicate.
fn split_by(f: &Function, n: u32, pick: impl Fn(&Function, InstrId) -> u32) -> Partition {
    let mut p = Partition::new(n);
    for i in f.all_instrs() {
        p.assign(i, ThreadId(pick(f, i) % n));
    }
    p
}

/// Straight-line arithmetic with output and live-out return.
fn straight_line() -> Function {
    let mut b = FunctionBuilder::new("straight");
    let x = b.param();
    let a = b.bin(BinOp::Mul, x, 3i64);
    let c = b.bin(BinOp::Add, a, 10i64);
    let d = b.bin(BinOp::Sub, c, x);
    b.output(d);
    let e = b.bin(BinOp::Xor, d, 255i64);
    b.ret(Some(e.into()));
    b.finish().unwrap()
}

/// Diamond with computation in both arms (hammock).
fn diamond() -> Function {
    let mut b = FunctionBuilder::new("diamond");
    let x = b.param();
    let r = b.fresh_reg();
    let then_bb = b.block("then");
    let else_bb = b.block("else");
    let join = b.block("join");
    let c = b.bin(BinOp::Lt, x, 10i64);
    b.branch(c, then_bb, else_bb);
    b.switch_to(then_bb);
    b.bin_into(BinOp::Add, r, x, 100i64);
    b.jump(join);
    b.switch_to(else_bb);
    b.bin_into(BinOp::Mul, r, x, 2i64);
    b.jump(join);
    b.switch_to(join);
    b.output(r);
    b.ret(Some(r.into()));
    b.finish().unwrap()
}

/// Counted loop with accumulator and memory writes.
fn counted_loop() -> Function {
    let mut b = FunctionBuilder::new("loop");
    let n = b.param();
    let arr = b.object("arr", 64);
    let i = b.fresh_reg();
    let s = b.fresh_reg();
    let header = b.block("h");
    let body = b.block("b");
    let exit = b.block("x");
    b.const_into(i, 0);
    b.const_into(s, 0);
    b.jump(header);
    b.switch_to(header);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let base = b.lea(arr, 0);
    let addr = b.bin(BinOp::Add, base, i);
    let sq = b.bin(BinOp::Mul, i, i);
    b.store(addr, 0, sq);
    b.bin_into(BinOp::Add, s, s, sq);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(header);
    b.switch_to(exit);
    b.output(s);
    b.ret(Some(s.into()));
    b.finish().unwrap()
}

/// Loop followed by a consumer of its live-out (Figure 4 shape).
fn loop_liveout() -> Function {
    let mut b = FunctionBuilder::new("liveout");
    let n = b.param();
    let i = b.fresh_reg();
    let r1 = b.fresh_reg();
    let h = b.block("h");
    let body = b.block("body");
    let after = b.block("after");
    b.const_into(i, 0);
    b.const_into(r1, 0);
    b.jump(h);
    b.switch_to(h);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, after);
    b.switch_to(body);
    b.bin_into(BinOp::Add, r1, r1, i); // B: r1 = ...
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(h);
    b.switch_to(after);
    let e = b.bin(BinOp::Mul, r1, 7i64); // E: uses r1 (live-out)
    b.output(e);
    b.ret(Some(e.into()));
    b.finish().unwrap()
}

/// Nested loops with a reduction.
fn nested_loops() -> Function {
    let mut b = FunctionBuilder::new("nested");
    let n = b.param();
    let i = b.fresh_reg();
    let j = b.fresh_reg();
    let s = b.fresh_reg();
    let h1 = b.block("h1");
    let h2 = b.block("h2");
    let b2 = b.block("b2");
    let a1 = b.block("a1");
    let exit = b.block("exit");
    b.const_into(i, 0);
    b.const_into(s, 0);
    b.jump(h1);
    b.switch_to(h1);
    let c1 = b.bin(BinOp::Lt, i, n);
    b.branch(c1, h2, exit);
    b.switch_to(h2);
    b.const_into(j, 0);
    b.jump(b2);
    b.switch_to(b2);
    let prod = b.bin(BinOp::Mul, i, j);
    b.bin_into(BinOp::Add, s, s, prod);
    b.bin_into(BinOp::Add, j, j, 1i64);
    let c2 = b.bin(BinOp::Lt, j, 3i64);
    b.branch(c2, b2, a1);
    b.switch_to(a1);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(h1);
    b.switch_to(exit);
    b.output(s);
    b.ret(Some(s.into()));
    b.finish().unwrap()
}

/// Memory pipeline: stage 1 fills an array, stage 2 reads it (same
/// object, so memory deps connect the stages).
fn memory_pipeline() -> Function {
    let mut b = FunctionBuilder::new("mempipe");
    let n = b.param();
    let arr = b.object("arr", 32);
    let i = b.fresh_reg();
    let s = b.fresh_reg();
    let h = b.block("h");
    let body = b.block("body");
    let exit = b.block("exit");
    b.const_into(i, 0);
    b.const_into(s, 0);
    b.jump(h);
    b.switch_to(h);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let base = b.lea(arr, 0);
    let addr = b.bin(BinOp::Add, base, i);
    let v = b.bin(BinOp::Add, i, 5i64);
    b.store(addr, 0, v); // producer store
    let w = b.load(addr, 0); // consumer load (aliases!)
    b.bin_into(BinOp::Add, s, s, w);
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(h);
    b.switch_to(exit);
    b.ret(Some(s.into()));
    b.finish().unwrap()
}

#[test]
fn straight_line_round_robin_2() {
    let f = straight_line();
    for args in [0i64, 7, -3, 1000] {
        assert_equivalent(&f, &round_robin(&f, 2), &[args]);
    }
}

#[test]
fn straight_line_round_robin_3() {
    let f = straight_line();
    assert_equivalent(&f, &round_robin(&f, 3), &[42]);
}

#[test]
fn diamond_both_paths() {
    let f = diamond();
    for args in [5i64, 50] {
        assert_equivalent(&f, &round_robin(&f, 2), &[args]);
    }
}

#[test]
fn diamond_arm_isolated_on_thread1() {
    let f = diamond();
    // Thread 1 holds only the then-arm computation.
    let p = split_by(&f, 2, |f, i| {
        u32::from(matches!(f.instr(i), Op::Bin(BinOp::Add, _, _, _)))
    });
    for args in [5i64, 50] {
        assert_equivalent(&f, &p, &[args]);
    }
}

#[test]
fn counted_loop_round_robin() {
    let f = counted_loop();
    for n in [0i64, 1, 13] {
        assert_equivalent(&f, &round_robin(&f, 2), &[n]);
    }
}

#[test]
fn counted_loop_three_threads() {
    let f = counted_loop();
    assert_equivalent(&f, &round_robin(&f, 3), &[9]);
}

#[test]
fn loop_liveout_consumer_on_other_thread() {
    let f = loop_liveout();
    // Everything on thread 0 except the post-loop consumer + output.
    let p = split_by(&f, 2, |f, i| {
        u32::from(matches!(f.instr(i), Op::Bin(BinOp::Mul, ..) | Op::Output(_)))
    });
    for n in [0i64, 1, 10] {
        assert_equivalent(&f, &p, &[n]);
    }
}

#[test]
fn loop_liveout_round_robin() {
    let f = loop_liveout();
    assert_equivalent(&f, &round_robin(&f, 2), &[10]);
}

#[test]
fn nested_loops_partitions() {
    let f = nested_loops();
    for n in [0i64, 1, 4] {
        assert_equivalent(&f, &round_robin(&f, 2), &[n]);
    }
    assert_equivalent(&f, &round_robin(&f, 4), &[3]);
}

#[test]
fn memory_pipeline_store_load_split() {
    let f = memory_pipeline();
    // Stores on thread 0, loads on thread 1: forces inter-thread
    // memory synchronization.
    let p = split_by(&f, 2, |f, i| u32::from(f.instr(i).is_mem_read()));
    for n in [0i64, 1, 8] {
        assert_equivalent(&f, &p, &[n]);
    }
}

#[test]
fn memory_pipeline_round_robin() {
    let f = memory_pipeline();
    assert_equivalent(&f, &round_robin(&f, 2), &[8]);
}

#[test]
fn output_ordering_across_threads() {
    // Interleaved outputs assigned to alternating threads must appear
    // in original order.
    let mut b = FunctionBuilder::new("outs");
    for v in 0..6 {
        b.output(v as i64);
    }
    b.ret(None);
    let f = b.finish().unwrap();
    assert_equivalent(&f, &round_robin(&f, 2), &[]);
    assert_equivalent(&f, &round_robin(&f, 3), &[]);
}

#[test]
fn single_thread_partition_is_identity_behavior() {
    let f = counted_loop();
    assert_equivalent(&f, &Partition::single_threaded(&f), &[5]);
}

#[test]
fn mtcg_reports_unassigned_instruction() {
    let f = straight_line();
    let p = Partition::new(2); // nothing assigned
    let pdg = Pdg::build(&f);
    assert!(matches!(
        gmt_mtcg::generate(&f, &pdg, &p),
        Err(gmt_mtcg::MtcgError::Unassigned(_))
    ));
}

#[test]
fn baseline_plan_cost_matches_figure1_expectation() {
    // Communication should be a visible fraction of dynamic instructions
    // for a fine-grained partition (Figure 1 reports up to ~25%).
    let f = counted_loop();
    let p = round_robin(&f, 2);
    let pdg = Pdg::build(&f);
    let out = gmt_mtcg::generate(&f, &pdg, &p).unwrap();
    let mt = run_mt(
        &out.threads,
        &[16],
        |_, _| {},
        &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
        &exec_config(),
    )
    .unwrap();
    let totals = mt.totals();
    assert!(totals.comm_total() > 0, "round-robin split must communicate");
}
