//! Queue allocation under pressure: code generated with a tight queue
//! budget must stay correct (same results, deadlock-free) at both queue
//! depths, while using no more queues than the budget.

use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_ir::{BinOp, Function, FunctionBuilder};
use gmt_mtcg::QueueBudget;
use gmt_pdg::{Partition, Pdg, ThreadId};

fn exec() -> ExecConfig {
    ExecConfig { max_steps: 10_000_000 }
}

/// A loop communicating many values per iteration (one per unrolled
/// statement), so the unlimited plan wants many queues.
fn chatty_kernel() -> Function {
    let mut b = FunctionBuilder::new("chatty");
    let n = b.param();
    let i = b.fresh_reg();
    let acc = b.fresh_reg();
    let h = b.block("h");
    let body = b.block("body");
    let exit = b.block("exit");
    b.const_into(i, 0);
    b.const_into(acc, 0);
    b.jump(h);
    b.switch_to(h);
    let c = b.bin(BinOp::Lt, i, n);
    b.branch(c, body, exit);
    b.switch_to(body);
    let mut v = i;
    for k in 0..12 {
        v = b.bin(BinOp::Add, v, (k as i64) + 1);
        let w = b.bin(BinOp::Xor, v, i);
        b.bin_into(BinOp::Add, acc, acc, w);
    }
    b.bin_into(BinOp::Add, i, i, 1i64);
    b.jump(h);
    b.switch_to(exit);
    b.output(acc);
    b.ret(Some(acc.into()));
    b.finish().unwrap()
}

fn round_robin(f: &Function, n: u32) -> Partition {
    let mut p = Partition::new(n);
    for (k, i) in f.all_instrs().enumerate() {
        p.assign(i, ThreadId(k as u32 % n));
    }
    p
}

#[test]
fn budgeted_codegen_is_correct_at_both_depths() {
    let f = chatty_kernel();
    let seq = run(&f, &[9], &exec()).unwrap();
    let partition = round_robin(&f, 2);
    let pdg = Pdg::build(&f);
    let plan = gmt_mtcg::baseline_plan(&f, &pdg, &partition).unwrap();
    let unlimited =
        gmt_mtcg::generate_with_plan_budgeted(&f, &partition, plan.clone(), QueueBudget::Unlimited)
            .unwrap();
    assert!(unlimited.num_queues > 8, "kernel must be chatty: {}", unlimited.num_queues);

    for budget in [4u32, 2] {
        let out = gmt_mtcg::generate_with_plan_budgeted(
            &f,
            &partition,
            plan.clone(),
            QueueBudget::Limit(budget),
        )
        .unwrap();
        assert!(out.num_queues <= budget, "{} > {budget}", out.num_queues);
        for depth in [1usize, 32] {
            let mt = run_mt(
                &out.threads,
                &[9],
                |_, _| {},
                &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: depth },
                &exec(),
            )
            .unwrap_or_else(|e| panic!("budget {budget} depth {depth}: {e}"));
            assert_eq!(mt.return_value, seq.return_value, "budget {budget} depth {depth}");
            assert_eq!(mt.output, seq.output, "budget {budget} depth {depth}");
        }
    }
}

#[test]
fn sync_array_budget_fits_all_catalog_plans() {
    // With the 256-queue budget, every catalog kernel's plan fits the
    // paper's synchronization array.
    for w in gmt_workloads::catalog() {
        let train = w.run_train().unwrap();
        let pdg = Pdg::build(&w.function);
        let partition = gmt_sched::dswp::partition(
            &w.function,
            &pdg,
            &train.profile,
            &gmt_sched::dswp::DswpConfig::default(),
        ).unwrap();
        let plan = gmt_mtcg::baseline_plan(&w.function, &pdg, &partition).unwrap();
        let out = gmt_mtcg::generate_with_plan_budgeted(
            &w.function,
            &partition,
            plan,
            QueueBudget::SYNC_ARRAY,
        )
        .unwrap();
        assert!(out.num_queues <= 256, "{}: {}", w.benchmark, out.num_queues);
        let seq = w.run_train().unwrap();
        let mt = run_mt(
            &out.threads,
            &w.train_args,
            w.init,
            &QueueConfig { num_queues: 256, capacity: 32 },
            &exec(),
        )
        .unwrap();
        assert_eq!(mt.return_value, seq.return_value, "{}", w.benchmark);
        assert_eq!(mt.output, seq.output, "{}", w.benchmark);
    }
}

#[test]
fn three_thread_budget() {
    let f = chatty_kernel();
    let seq = run(&f, &[5], &exec()).unwrap();
    let partition = round_robin(&f, 3);
    let pdg = Pdg::build(&f);
    let plan = gmt_mtcg::baseline_plan(&f, &pdg, &partition).unwrap();
    let out =
        gmt_mtcg::generate_with_plan_budgeted(&f, &partition, plan, QueueBudget::Limit(8)).unwrap();
    assert!(out.num_queues <= 8);
    let mt = run_mt(
        &out.threads,
        &[5],
        |_, _| {},
        &QueueConfig { num_queues: 8, capacity: 1 },
        &exec(),
    )
    .unwrap();
    assert_eq!(mt.return_value, seq.return_value);
}
