//! Multi-Threaded Code Generation (MTCG, Algorithm 1 of the paper).
//!
//! Takes the original CFG, a partition, and a communication plan, and
//! produces one new CFG per thread containing: the thread's own
//! instructions, the produce/consume instructions of the plan,
//! duplicated relevant branches (with their consumed operands), and
//! branch/jump targets fixed through the post-dominance relation
//! (§2.2.3 of \[16\]).

use crate::plan::{CommKind, CommPlan, CommPoint};
use gmt_ir::{BlockId, Function, InstrId, Op, PostDominators, QueueId, Reg, VerifyError};
use gmt_pdg::{Partition, Pdg, ThreadId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

/// The output of MTCG: one function per thread plus metadata.
#[derive(Clone, Debug)]
pub struct MtcgOutput {
    /// The per-thread CFGs, indexed by thread id.
    pub threads: Vec<Function>,
    /// Number of queues consumed (one per plan point).
    pub num_queues: u32,
    /// The plan that was realized (baseline or COCO-optimized).
    pub plan: CommPlan,
    /// One label per scheduled communication occurrence, in queue
    /// allocation order: which queue the occurrence uses, at which
    /// point of the original CFG, carrying what, between which
    /// threads. A queue reused under a tight budget appears in several
    /// labels; trace consumers group by [`QueueLabel::queue`].
    pub queue_labels: Vec<QueueLabel>,
    /// Per-thread provenance: which original-CFG block each generated
    /// block realizes. Generated blocks with no original counterpart
    /// (the shared `mt_exit`, an entry stub) are absent. Static
    /// verifiers use this to walk a thread's realization of the
    /// original control flow.
    pub origins: Vec<BTreeMap<BlockId, BlockId>>,
}

/// Static description of one scheduled communication occurrence — the
/// metadata a trace consumer needs to attribute per-queue dynamic
/// produce/consume counts back to the [`CommPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueLabel {
    /// The SA queue the occurrence was assigned.
    pub queue: QueueId,
    /// The original-CFG point the pair was placed at.
    pub point: CommPoint,
    /// What is communicated (register value or memory token).
    pub kind: CommKind,
    /// Producing thread.
    pub from: ThreadId,
    /// Consuming thread.
    pub to: ThreadId,
}

impl MtcgOutput {
    /// Static count of communication instructions across all threads
    /// (each plan point contributes one produce and one consume).
    pub fn static_comm_instrs(&self) -> usize {
        self.threads
            .iter()
            .map(|f| {
                f.all_instrs()
                    .filter(|&i| f.instr(i).is_communication())
                    .count()
            })
            .sum()
    }
}

/// MTCG failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MtcgError {
    /// An instruction was not assigned to any thread.
    Unassigned(InstrId),
    /// A generated thread failed structural verification — indicates a
    /// plan that does not deliver some value (a register used in a
    /// thread with neither a local definition nor a consume).
    BadThread {
        /// The offending thread.
        thread: ThreadId,
        /// The underlying defect.
        cause: VerifyError,
    },
    /// The queue budget cannot give every distinct (from, to) thread
    /// pair at least one private queue.
    QueueBudget {
        /// The configured budget.
        limit: u32,
        /// Distinct communicating thread pairs in the plan.
        pairs: u32,
    },
    /// The plan communicates with a thread the partition does not have.
    PlanThreadOutOfRange {
        /// The out-of-range thread.
        thread: ThreadId,
        /// The partition's thread count.
        num_threads: u32,
    },
    /// The plan places communication at a point that does not exist in
    /// the function (instruction or block id out of range).
    PlanPointOutOfRange(CommPoint),
}

impl fmt::Display for MtcgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtcgError::Unassigned(i) => write!(f, "instruction {i:?} unassigned"),
            MtcgError::BadThread { thread, cause } => {
                write!(f, "generated thread {thread:?} is malformed: {cause}")
            }
            MtcgError::QueueBudget { limit, pairs } => {
                write!(f, "queue budget {limit} below the number of thread pairs {pairs}")
            }
            MtcgError::PlanThreadOutOfRange { thread, num_threads } => {
                write!(f, "plan references {thread:?} but the partition has {num_threads} threads")
            }
            MtcgError::PlanPointOutOfRange(p) => {
                write!(f, "plan point {p:?} does not exist in the function")
            }
        }
    }
}

impl Error for MtcgError {}

/// A communication pair scheduled at a specific point with its queue.
#[derive(Clone, Copy, Debug)]
struct Scheduled {
    queue: QueueId,
    kind: CommKind,
    from: ThreadId,
    to: ThreadId,
}

impl Scheduled {
    fn produce_op(&self) -> Op {
        match self.kind {
            CommKind::Register(r) => Op::Produce { queue: self.queue, value: r.into() },
            CommKind::Memory => Op::ProduceSync { queue: self.queue },
        }
    }

    fn consume_op(&self) -> Op {
        match self.kind {
            CommKind::Register(r) => Op::Consume { dst: r, queue: self.queue },
            CommKind::Memory => Op::ConsumeSync { queue: self.queue },
        }
    }
}

/// Runs MTCG with the baseline plan (Algorithm 1's own placement).
///
/// # Errors
///
/// See [`MtcgError`].
pub fn generate(f: &Function, pdg: &Pdg, partition: &Partition) -> Result<MtcgOutput, MtcgError> {
    if let Err(i) = partition.validate(f) {
        return Err(MtcgError::Unassigned(i));
    }
    let plan = crate::relevance::baseline_plan(f, pdg, partition)?;
    generate_with_plan(f, partition, plan)
}

/// Runs MTCG realizing the given plan (COCO hands its optimized plan
/// here).
///
/// # Errors
///
/// See [`MtcgError`].
pub fn generate_with_plan(
    f: &Function,
    partition: &Partition,
    plan: CommPlan,
) -> Result<MtcgOutput, MtcgError> {
    generate_with_plan_budgeted(f, partition, plan, crate::QueueBudget::Unlimited)
}

/// Like [`generate_with_plan`], with a bound on the number of hardware
/// queues: when the plan needs more points than queues, points sharing
/// a (from, to) thread pair are folded onto shared queues (see
/// [`crate::queues`] for why that is sound).
///
/// # Errors
///
/// See [`MtcgError`].
pub fn generate_with_plan_budgeted(
    f: &Function,
    partition: &Partition,
    plan: CommPlan,
    budget: crate::QueueBudget,
) -> Result<MtcgOutput, MtcgError> {
    if let Err(i) = partition.validate(f) {
        return Err(MtcgError::Unassigned(i));
    }
    validate_plan(f, partition, &plan)?;
    let pdom = PostDominators::compute(f);

    // Queue assignment: one queue per (item, point). All communication
    // at one point is emitted in a single *global* order, identical in
    // every thread — each thread takes the subsequence it participates
    // in. This is what makes the generated code deadlock-free: at any
    // blocked moment, the lowest unfinished operation's producer has
    // already completed everything before it, so it can always fire.
    // (Per-thread "all consumes before all produces" is NOT safe: two
    // opposite-direction items at the same point would each wait for
    // the other's produce.)
    //
    // One ordering constraint is semantic, not just for liveness: when
    // a thread both receives register r and forwards r at the same
    // point, the consume must come first so the forwarded value is the
    // fresh one.
    let mut per_point: BTreeMap<CommPoint, Vec<(CommKind, ThreadId, ThreadId)>> = BTreeMap::new();
    for item in plan.items() {
        for &p in &item.points {
            per_point.entry(p).or_default().push((item.kind, item.from, item.to));
        }
    }
    // Order occurrences first, then run queue allocation over the
    // resulting (from, to) sequence.
    let mut ordered_occurrences: Vec<(CommPoint, CommKind, ThreadId, ThreadId)> = Vec::new();
    for (p, mut items) in per_point {
        // Stable fix-up: for the same register, an item delivering r
        // *into* thread X precedes an item sending r *from* X.
        items.sort();
        let mut ordered: Vec<(CommKind, ThreadId, ThreadId)> = Vec::with_capacity(items.len());
        while !items.is_empty() {
            // Pick the first item whose *register value* is not still
            // being delivered into its source thread by an unplaced
            // item (memory tokens carry no value; no constraint).
            let pick = items
                .iter()
                .position(|&(k, from, _)| {
                    !matches!(k, CommKind::Register(_))
                        || !items.iter().any(|&(k2, _, to2)| k2 == k && to2 == from)
                })
                .unwrap_or(0);
            ordered.push(items.remove(pick));
        }
        for (kind, from, to) in ordered {
            ordered_occurrences.push((p, kind, from, to));
        }
    }
    let pairs: Vec<(ThreadId, ThreadId)> = ordered_occurrences
        .iter()
        .map(|&(_, _, from, to)| (from, to))
        .collect();
    let (queue_of, num_queues) = crate::queues::allocate(&pairs, budget)?;
    let mut comm_at: BTreeMap<CommPoint, Vec<Scheduled>> = BTreeMap::new();
    let mut queue_labels = Vec::with_capacity(ordered_occurrences.len());
    for (k, (p, kind, from, to)) in ordered_occurrences.into_iter().enumerate() {
        let queue = QueueId(queue_of[k]);
        queue_labels.push(QueueLabel { queue, point: p, kind, from, to });
        comm_at.entry(p).or_default().push(Scheduled { queue, kind, from, to });
    }

    let mut threads = Vec::with_capacity(partition.num_threads() as usize);
    let mut origins = Vec::with_capacity(partition.num_threads() as usize);
    for t in partition.threads() {
        let (nf, origin) = generate_thread(f, partition, &plan, &pdom, &comm_at, t)?;
        threads.push(nf);
        origins.push(origin);
    }
    Ok(MtcgOutput { threads, num_queues, plan, queue_labels, origins })
}

/// Rejects plans that talk about threads or program points the
/// partition/function do not have; indexing on either would otherwise
/// panic deep inside code generation.
fn validate_plan(f: &Function, partition: &Partition, plan: &CommPlan) -> Result<(), MtcgError> {
    let nt = partition.num_threads();
    let point_ok = |p: &CommPoint| match *p {
        CommPoint::Before(i) | CommPoint::After(i) => (i.0 as usize) < f.num_instrs(),
        CommPoint::BlockStart(b) => (b.0 as usize) < f.num_blocks(),
    };
    for item in plan.items() {
        for &t in [item.from, item.to].iter() {
            if t.0 >= nt {
                return Err(MtcgError::PlanThreadOutOfRange { thread: t, num_threads: nt });
            }
        }
        for p in &item.points {
            if !point_ok(p) {
                return Err(MtcgError::PlanPointOutOfRange(*p));
            }
        }
    }
    for (t, branches) in plan.all_relevant_branches().iter().enumerate() {
        if t as u32 >= nt && !branches.is_empty() {
            return Err(MtcgError::PlanThreadOutOfRange {
                thread: ThreadId(t as u32),
                num_threads: nt,
            });
        }
        for &br in branches {
            if (br.0 as usize) >= f.num_instrs() {
                return Err(MtcgError::PlanPointOutOfRange(CommPoint::Before(br)));
            }
        }
    }
    Ok(())
}

fn generate_thread(
    f: &Function,
    partition: &Partition,
    plan: &CommPlan,
    pdom: &PostDominators,
    comm_at: &BTreeMap<CommPoint, Vec<Scheduled>>,
    t: ThreadId,
) -> Result<(Function, BTreeMap<BlockId, BlockId>), MtcgError> {
    // ---- relevant blocks: the thread's instructions, its communication
    // points, and its relevant branches.
    let mut relevant: BTreeSet<BlockId> = BTreeSet::new();
    for i in f.all_instrs() {
        if partition.get(i) == Some(t) {
            relevant.insert(f.block_of(i));
        }
    }
    for (p, comms) in comm_at {
        if comms.iter().any(|c| c.from == t || c.to == t) {
            relevant.insert(p.block(f));
        }
    }
    for &br in plan.relevant_branches(t) {
        relevant.insert(f.block_of(br));
    }

    let mut nf = Function::new(format!("{}.{}", f.name, t));
    nf.params = f.params.clone();
    if f.num_regs() > 0 {
        nf.ensure_reg(Reg(f.num_regs() - 1));
    }
    for obj in f.objects() {
        nf.add_object(obj.name.clone(), obj.size);
    }

    // Degenerate: a thread with nothing at all.
    if relevant.is_empty() {
        nf.set_terminator(nf.entry(), Op::Ret(None));
        return Ok((nf, BTreeMap::new()));
    }

    // ---- block images.
    let entry_relevant = relevant.contains(&f.entry());
    let mut image: HashMap<BlockId, BlockId> = HashMap::new();
    for &b in &relevant {
        if b == f.entry() && entry_relevant {
            image.insert(b, nf.entry());
        } else {
            let nb = nf.add_block(format!("{}'", f.block(b).name));
            image.insert(b, nb);
        }
    }
    // Shared exit for paths with no further relevant blocks.
    let exit = nf.add_block("mt_exit");
    nf.set_terminator(exit, Op::Ret(None));

    // First relevant block at-or-after `s` on the post-dominator chain
    // (the branch-target fixing of \[16\] §2.2.3).
    let retarget = |s: BlockId| -> BlockId {
        let mut cur = Some(s);
        while let Some(x) = cur {
            if let Some(&img) = image.get(&x) {
                return img;
            }
            cur = pdom.ipdom(x);
        }
        exit
    };

    // Emit the communication scheduled at one point into block `nb`,
    // in the global per-point order (this thread's subsequence of it).
    let emit_point = |nf: &mut Function, nb: BlockId, p: CommPoint| {
        let Some(comms) = comm_at.get(&p) else { return };
        for c in comms {
            if c.to == t {
                nf.push_instr(nb, c.consume_op());
            } else if c.from == t {
                nf.push_instr(nb, c.produce_op());
            }
        }
    };

    for &b in &relevant {
        let nb = image[&b];
        emit_point(&mut nf, nb, CommPoint::BlockStart(b));
        for &i in &f.block(b).instrs {
            emit_point(&mut nf, nb, CommPoint::Before(i));
            if partition.get(i) == Some(t) {
                nf.push_instr(nb, f.instr(i).clone());
            }
            emit_point(&mut nf, nb, CommPoint::After(i));
        }
        let term = f.block(b).terminator.expect("verified input");
        emit_point(&mut nf, nb, CommPoint::Before(term));
        let top = f.instr(term).clone();
        if partition.get(term) == Some(t) {
            match top {
                Op::Branch { cond, then_bb, else_bb } => {
                    nf.set_terminator(
                        nb,
                        Op::Branch {
                            cond,
                            then_bb: retarget(then_bb),
                            else_bb: retarget(else_bb),
                        },
                    );
                }
                Op::Jump(s) => {
                    nf.set_terminator(nb, Op::Jump(retarget(s)));
                }
                Op::Ret(v) => {
                    nf.set_terminator(nb, Op::Ret(v));
                }
                other => unreachable!("terminator expected, found {other}"),
            }
        } else if let (true, Op::Branch { cond, then_bb, else_bb }) =
            (plan.relevant_branches(t).contains(&term), top)
        {
            // Duplicate the relevant branch (Algorithm 1, line 20). Its
            // operand register arrives through a consume placed by the
            // plan at or before this point.
            nf.set_terminator(
                nb,
                Op::Branch {
                    cond,
                    then_bb: retarget(then_bb),
                    else_bb: retarget(else_bb),
                },
            );
        } else {
            // The branch outcome is irrelevant to this thread: skip to
            // the next relevant block on the pdom chain.
            let target = match pdom.ipdom(b) {
                Some(x) => retarget(x),
                None => exit,
            };
            nf.set_terminator(nb, Op::Jump(target));
        }
    }

    // Entry stub when the original entry is not relevant.
    if !entry_relevant {
        let target = retarget(f.entry());
        nf.set_terminator(nf.entry(), Op::Jump(target));
    }

    gmt_ir::verify(&nf).map_err(|cause| MtcgError::BadThread { thread: t, cause })?;
    let origin: BTreeMap<BlockId, BlockId> = image.iter().map(|(&b, &nb)| (nb, b)).collect();
    Ok((nf, origin))
}
