//! Relevant branches (Definition 1) and the baseline MTCG plan
//! (Algorithm 1's placement strategy).

use crate::plan::{CommKind, CommPlan, CommPoint};
use crate::MtcgError;
use gmt_ir::{ControlDeps, Function, InstrId, Op, PostDominators};
use gmt_pdg::{DepKind, Partition, Pdg, ThreadId};
use std::collections::BTreeSet;

/// Computes the set of *relevant branches* of every thread (Definition
/// 1 of the paper), given the current communication placement:
///
/// 1. branches assigned to the thread are relevant;
/// 2. branches controlling the insertion point of a communication
///    involving the thread — or controlling any of the thread's own
///    instructions — are relevant;
/// 3. branches controlling another relevant branch are relevant.
pub fn relevant_branches(
    f: &Function,
    cdeps: &ControlDeps,
    partition: &Partition,
    plan: &CommPlan,
) -> Vec<BTreeSet<InstrId>> {
    let nt = partition.num_threads() as usize;
    let mut relevant: Vec<BTreeSet<InstrId>> = vec![BTreeSet::new(); nt];
    #[allow(clippy::needless_range_loop)]
    for t_idx in 0..nt {
        let t = ThreadId(t_idx as u32);
        // Blocks whose execution condition thread t must reproduce.
        let mut need: Vec<gmt_ir::BlockId> = Vec::new();
        let mut seen = vec![false; f.num_blocks()];
        let push = |need: &mut Vec<gmt_ir::BlockId>, seen: &mut Vec<bool>, b: gmt_ir::BlockId| {
            if !seen[b.index()] {
                seen[b.index()] = true;
                need.push(b);
            }
        };
        for i in f.all_instrs() {
            if partition.get(i) == Some(t) {
                push(&mut need, &mut seen, f.block_of(i));
                // Rule 1: an assigned branch is itself relevant.
                if f.instr(i).is_branch() {
                    relevant[t_idx].insert(i);
                }
            }
        }
        for item in plan.items() {
            if item.from == t || item.to == t {
                for &p in &item.points {
                    push(&mut need, &mut seen, p.block(f));
                }
            }
        }
        // Closure over control dependences (rules 2 and 3).
        let mut cursor = 0;
        while cursor < need.len() {
            let b = need[cursor];
            cursor += 1;
            for cd in cdeps.of_block(b) {
                if relevant[t_idx].insert(cd.branch) {
                    push(&mut need, &mut seen, f.block_of(cd.branch));
                }
            }
        }
    }
    relevant
}

/// Builds the baseline MTCG communication plan (Algorithm 1): every
/// inter-thread dependence is communicated at its source instruction,
/// and every relevant branch owned by another thread has its operand
/// sent immediately before the branch.
///
/// The relevant-branch sets and the branch-operand communications are
/// mutually recursive (an operand communication makes more branches
/// relevant), so this iterates to a fixpoint — mirroring the transitive
/// control dependences of \[16\].
///
/// # Errors
///
/// Returns [`MtcgError::Unassigned`] if some instruction of `f` is
/// unassigned in `partition`.
pub fn baseline_plan(
    f: &Function,
    pdg: &Pdg,
    partition: &Partition,
) -> Result<CommPlan, MtcgError> {
    partition.validate(f).map_err(MtcgError::Unassigned)?;
    let pdom = PostDominators::compute(f);
    let cdeps = ControlDeps::compute(f, &pdom);
    let mut plan = CommPlan::new(partition.num_threads());

    // Data and memory dependences at their source instructions.
    for dep in pdg.deps() {
        let (s, t) = (partition.thread_of(dep.src), partition.thread_of(dep.dst));
        if s == t {
            continue;
        }
        match dep.kind {
            DepKind::Register(r) => {
                plan.add_point(CommKind::Register(r), s, t, CommPoint::After(dep.src));
            }
            DepKind::Memory => {
                plan.add_point(CommKind::Memory, s, t, CommPoint::After(dep.src));
            }
            // Control dependences are realized through the
            // relevant-branch closure below (branch duplication +
            // operand communication), per lines 16-20 of Algorithm 1.
            DepKind::Control => {}
        }
    }

    // Fixpoint: recompute relevance, add operand communications for
    // duplicated branches, repeat until stable.
    loop {
        let relevant = relevant_branches(f, &cdeps, partition, &plan);
        let mut changed = false;
        for (t_idx, branches) in relevant.iter().enumerate() {
            let t = ThreadId(t_idx as u32);
            for &br in branches {
                changed |= plan.add_relevant_branch(t, br);
                let owner = partition.thread_of(br);
                if owner == t {
                    continue;
                }
                let Op::Branch { cond, .. } = *f.instr(br) else {
                    unreachable!("relevant branches are conditional branches")
                };
                changed |= plan.add_point(
                    CommKind::Register(cond),
                    owner,
                    t,
                    CommPoint::Before(br),
                );
            }
        }
        if !changed {
            return Ok(plan);
        }
    }
}

/// Refreshes `plan.relevant_branches` from the plan's current points —
/// a convenience for callers that assemble [`CommPlan`]s by hand (e.g.
/// a custom optimizer): after setting placement points, run this so
/// code generation knows which branches each thread must duplicate.
/// (COCO maintains the closure itself inside Algorithm 2.)
pub fn close_over_control(f: &Function, partition: &Partition, plan: &mut CommPlan) {
    let pdom = PostDominators::compute(f);
    let cdeps = ControlDeps::compute(f, &pdom);
    loop {
        let relevant = relevant_branches(f, &cdeps, partition, plan);
        let mut changed = false;
        for (t_idx, branches) in relevant.iter().enumerate() {
            let t = ThreadId(t_idx as u32);
            for &br in branches {
                changed |= plan.add_relevant_branch(t, br);
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::{BinOp, BlockId, FunctionBuilder};
    use gmt_pdg::Pdg;

    /// The paper's Figure 3: B1{A: r1=..., B(br)}, B2{C output, D(br),
    /// E: r1=...}, B3{F uses r1, G}. Our rendition:
    ///   B1: r1 = x*2 ; br (x<10) -> B3 else B2
    ///   B2: output x ; r1 = x+1 ; br(x<5) -> B3 else B3   (simplified: jump)
    ///   B3: F: y = r1 + 7 (assigned T2) ; output y ; ret
    fn figure3_like() -> (Function, Partition, Pdg) {
        let mut b = FunctionBuilder::new("fig3");
        let x = b.param();
        let r1 = b.fresh_reg();
        let b2 = b.block("B2");
        let b3 = b.block("B3");
        // B1
        let a = b.bin_into(BinOp::Mul, r1, x, 2i64); // A: def r1
        let c1 = b.bin(BinOp::Lt, x, 10i64);
        let br_b = b.branch(c1, b3, b2); // B
        // B2
        b.switch_to(b2);
        let c_i = b.output(x); // C
        let e = b.bin_into(BinOp::Add, r1, x, 1i64); // E: def r1
        let c2 = b.bin(BinOp::Lt, x, 5i64);
        let br_d = b.branch(c2, b3, b3); // D (both arms to B3)
        // B3
        b.switch_to(b3);
        let fi = b.bin(BinOp::Add, r1, 7i64); // F (thread 2)
        let g = b.output(fi); // G
        b.ret(None);
        let f = b.finish().unwrap();
        let mut p = Partition::new(2);
        for i in f.all_instrs() {
            p.assign(i, ThreadId(0));
        }
        // F goes to thread 1.
        let f_instr = f
            .all_instrs()
            .find(|&i| matches!(f.instr(i), Op::Bin(BinOp::Add, _, _, gmt_ir::Operand::Imm(7))))
            .unwrap();
        p.assign(f_instr, ThreadId(1));
        let _ = (a, br_b, c_i, e, br_d, g);
        let pdg = Pdg::build(&f);
        (f, p, pdg)
    }

    #[test]
    fn baseline_communicates_each_def() {
        let (f, p, pdg) = figure3_like();
        let plan = baseline_plan(&f, &pdg, &p).unwrap();
        // r1 has two defs (A and E) with inter-thread deps into F:
        // two communication points.
        let r1 = gmt_ir::Reg(1);
        let pts = plan.points(CommKind::Register(r1), ThreadId(0), ThreadId(1));
        assert_eq!(pts.len(), 2, "{plan:?}");
        assert!(pts.iter().all(|pt| matches!(pt, CommPoint::After(_))));
    }

    #[test]
    fn transitive_control_branch_becomes_relevant() {
        let (f, p, pdg) = figure3_like();
        let plan = baseline_plan(&f, &pdg, &p).unwrap();
        // E (def of r1) is in B2, control dependent on branch B (in B1).
        // Its comm point is in B2 => branch B must be relevant to T1 and
        // its operand communicated.
        let branch_b = f.block(BlockId(0)).terminator.unwrap();
        assert!(plan.relevant_branches(ThreadId(1)).contains(&branch_b));
        let cond = match *f.instr(branch_b) {
            Op::Branch { cond, .. } => cond,
            _ => unreachable!(),
        };
        let pts = plan.points(CommKind::Register(cond), ThreadId(0), ThreadId(1));
        assert!(pts.contains(&CommPoint::Before(branch_b)), "{plan:?}");
    }

    #[test]
    fn thread0_duplicates_nothing_foreign() {
        let (f, p, pdg) = figure3_like();
        let plan = baseline_plan(&f, &pdg, &p).unwrap();
        // Thread 0 owns all branches; its relevant set equals its own.
        for &br in plan.relevant_branches(ThreadId(0)) {
            assert_eq!(p.thread_of(br), ThreadId(0));
        }
    }

    #[test]
    fn single_thread_needs_no_communication() {
        let (f, _, pdg) = figure3_like();
        let p = Partition::single_threaded(&f);
        let plan = baseline_plan(&f, &pdg, &p).unwrap();
        assert_eq!(plan.total_points(), 0);
    }

    #[test]
    fn memory_dep_gets_sync_point() {
        // Two outputs in different threads: ordered via memory sync.
        let mut b = FunctionBuilder::new("m");
        b.output(1i64);
        b.output(2i64);
        b.ret(None);
        let f = b.finish().unwrap();
        let mut p = Partition::new(2);
        let instrs: Vec<_> = f.all_instrs().collect();
        p.assign(instrs[0], ThreadId(0));
        p.assign(instrs[1], ThreadId(1));
        p.assign(instrs[2], ThreadId(0));
        let pdg = Pdg::build(&f);
        let plan = baseline_plan(&f, &pdg, &p).unwrap();
        let pts = plan.points(CommKind::Memory, ThreadId(0), ThreadId(1));
        assert_eq!(pts.len(), 1);
        assert_eq!(pts.iter().next(), Some(&CommPoint::After(instrs[0])));
    }
}
