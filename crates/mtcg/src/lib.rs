//! Multi-Threaded Code Generation (MTCG) — the algorithm of Ottoni,
//! Rangan, Stoler & August \[16\] that turns *any* partition of a
//! function's instructions into threads into provably-correct
//! multi-threaded code, inserting produce/consume communication for
//! every inter-thread dependence.
//!
//! The placement of the communication is captured in a [`CommPlan`]:
//!
//! - [`baseline_plan`] reproduces Algorithm 1 exactly — every register
//!   or memory dependence is communicated at its source instruction,
//!   and every relevant branch owned by another thread has its operand
//!   sent immediately before the branch and the branch duplicated in
//!   the consuming thread;
//! - the COCO crate (`gmt-core`) computes optimized plans with min-cuts
//!   and feeds them to the same code generator via
//!   [`generate_with_plan`].
//!
//! # Example
//!
//! ```
//! use gmt_ir::{FunctionBuilder, BinOp, interp_mt};
//! use gmt_pdg::{Pdg, Partition, ThreadId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // x*3 on thread 0, output on thread 1.
//! let mut b = FunctionBuilder::new("f");
//! let x = b.param();
//! let y = b.bin(BinOp::Mul, x, 3i64);
//! b.output(y);
//! b.ret(None);
//! let f = b.finish()?;
//! let instrs: Vec<_> = f.all_instrs().collect();
//! let mut p = Partition::new(2);
//! p.assign(instrs[0], ThreadId(0));
//! p.assign(instrs[1], ThreadId(1));
//! p.assign(instrs[2], ThreadId(0));
//! let pdg = Pdg::build(&f);
//! let out = gmt_mtcg::generate(&f, &pdg, &p)?;
//! let result = interp_mt::run_mt(
//!     &out.threads, &[14], |_, _| {},
//!     &interp_mt::QueueConfig::default(),
//!     &gmt_ir::interp::ExecConfig::default(),
//! )?;
//! assert_eq!(result.output, vec![42]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod plan;
pub mod queues;
mod relevance;

pub use codegen::{
    generate, generate_with_plan, generate_with_plan_budgeted, MtcgError, MtcgOutput, QueueLabel,
};
pub use plan::{CommItem, CommKind, CommPlan, CommPoint};
pub use queues::{allocate_depths, estimated_traffic, QueueBudget};
pub use relevance::{baseline_plan, close_over_control, relevant_branches};
