//! Communication plans: where produce/consume pairs go.
//!
//! A [`CommPlan`] is the contract between MTCG and COCO. MTCG's
//! baseline plan places every communication at the dependence's source
//! instruction (Algorithm 1 of the paper); COCO computes a cheaper plan
//! with min-cuts and hands it to the same code generator — "these
//! annotations can be directly used to place communications in a
//! slightly modified version of MTCG" (§3.2).

use gmt_ir::{BlockId, Function, InstrId, Reg};
use gmt_pdg::ThreadId;
use std::collections::{BTreeMap, BTreeSet};

/// A program point of the *original* CFG at which communication can be
/// inserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommPoint {
    /// Immediately before instruction `i` (valid for any instruction,
    /// including terminators).
    Before(InstrId),
    /// Immediately after instruction `i` (must not be a terminator).
    After(InstrId),
    /// At the start of block `b`, before its first instruction.
    BlockStart(BlockId),
}

impl CommPoint {
    /// The block containing this point.
    pub fn block(self, f: &Function) -> BlockId {
        match self {
            CommPoint::Before(i) | CommPoint::After(i) => f.block_of(i),
            CommPoint::BlockStart(b) => b,
        }
    }
}

/// What is communicated by an item.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommKind {
    /// The value of a virtual register (a `produce`/`consume` pair per
    /// point).
    Register(Reg),
    /// A memory synchronization token (`produce.sync`/`consume.sync`
    /// pair per point). One item carries *all* memory dependences
    /// between the thread pair — synchronization is shared (§3.1.3).
    Memory,
}

/// One communicated item: a register value or the memory token, sent
/// from `from` to `to` at each of `points`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommItem {
    /// What is sent.
    pub kind: CommKind,
    /// Producing thread.
    pub from: ThreadId,
    /// Consuming thread.
    pub to: ThreadId,
    /// The placement points (each gets its own queue).
    pub points: BTreeSet<CommPoint>,
}

/// A complete communication plan for one partition.
#[derive(Clone, Debug, Default)]
pub struct CommPlan {
    /// The items, keyed by `(kind, from, to)` (at most one per key).
    items: BTreeMap<(CommKind, ThreadId, ThreadId), BTreeSet<CommPoint>>,
    /// Per thread: the branches it must duplicate (its *relevant
    /// branches* that are assigned to another thread), plus the ones it
    /// owns (relevant by Definition 1 rule 1).
    relevant_branches: Vec<BTreeSet<InstrId>>,
}

impl CommPlan {
    /// An empty plan for `num_threads` threads.
    pub fn new(num_threads: u32) -> CommPlan {
        CommPlan {
            items: BTreeMap::new(),
            relevant_branches: vec![BTreeSet::new(); num_threads as usize],
        }
    }

    /// Adds `point` to the item `(kind, from, to)`; returns whether the
    /// plan changed.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (intra-thread dependences need no
    /// communication).
    pub fn add_point(
        &mut self,
        kind: CommKind,
        from: ThreadId,
        to: ThreadId,
        point: CommPoint,
    ) -> bool {
        assert_ne!(from, to, "communication within a thread");
        self.items.entry((kind, from, to)).or_default().insert(point)
    }

    /// Replaces the points of item `(kind, from, to)`.
    pub fn set_points(
        &mut self,
        kind: CommKind,
        from: ThreadId,
        to: ThreadId,
        points: BTreeSet<CommPoint>,
    ) {
        assert_ne!(from, to);
        if points.is_empty() {
            self.items.remove(&(kind, from, to));
        } else {
            self.items.insert((kind, from, to), points);
        }
    }

    /// The points of item `(kind, from, to)`, empty if absent.
    pub fn points(&self, kind: CommKind, from: ThreadId, to: ThreadId) -> BTreeSet<CommPoint> {
        self.items.get(&(kind, from, to)).cloned().unwrap_or_default()
    }

    /// All items in canonical order.
    pub fn items(&self) -> impl Iterator<Item = CommItem> + '_ {
        self.items.iter().map(|(&(kind, from, to), points)| CommItem {
            kind,
            from,
            to,
            points: points.clone(),
        })
    }

    /// Marks `branch` as relevant to thread `t`; returns whether new.
    pub fn add_relevant_branch(&mut self, t: ThreadId, branch: InstrId) -> bool {
        self.relevant_branches[t.index()].insert(branch)
    }

    /// The relevant branches of thread `t` (empty if `t` is out of
    /// range — a plan never owes branches to a thread it does not
    /// cover).
    pub fn relevant_branches(&self, t: ThreadId) -> &BTreeSet<InstrId> {
        static EMPTY: BTreeSet<InstrId> = BTreeSet::new();
        self.relevant_branches.get(t.index()).unwrap_or(&EMPTY)
    }

    /// The relevant-branch sets of all threads, indexed by thread.
    pub fn all_relevant_branches(&self) -> &[BTreeSet<InstrId>] {
        &self.relevant_branches
    }

    /// Number of threads the plan covers.
    pub fn num_threads(&self) -> u32 {
        self.relevant_branches.len() as u32
    }

    /// Total number of placement points (= queue pairs = static
    /// produce/consume pair count).
    pub fn total_points(&self) -> usize {
        self.items.values().map(BTreeSet::len).sum()
    }

    /// The expected dynamic communication cost of the plan under a
    /// profile: for every point, the profile weight of its block,
    /// counting both the produce and the consume (×2).
    pub fn dynamic_cost(&self, f: &Function, profile: &gmt_ir::Profile) -> u64 {
        let weights = profile.block_weights(f);
        self.items
            .values()
            .flat_map(|pts| pts.iter())
            .map(|p| 2 * weights[p.block(f).index()])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmt_ir::FunctionBuilder;

    #[test]
    fn add_and_query_points() {
        let mut plan = CommPlan::new(2);
        let k = CommKind::Register(Reg(3));
        assert!(plan.add_point(k, ThreadId(0), ThreadId(1), CommPoint::Before(InstrId(5))));
        assert!(!plan.add_point(k, ThreadId(0), ThreadId(1), CommPoint::Before(InstrId(5))));
        assert_eq!(plan.points(k, ThreadId(0), ThreadId(1)).len(), 1);
        assert_eq!(plan.points(k, ThreadId(1), ThreadId(0)).len(), 0);
        assert_eq!(plan.total_points(), 1);
    }

    #[test]
    #[should_panic(expected = "within a thread")]
    fn same_thread_rejected() {
        let mut plan = CommPlan::new(2);
        plan.add_point(CommKind::Memory, ThreadId(0), ThreadId(0), CommPoint::BlockStart(BlockId(0)));
    }

    #[test]
    fn set_points_replaces_and_clears() {
        let mut plan = CommPlan::new(2);
        let k = CommKind::Memory;
        plan.add_point(k, ThreadId(0), ThreadId(1), CommPoint::BlockStart(BlockId(0)));
        let mut np = BTreeSet::new();
        np.insert(CommPoint::BlockStart(BlockId(1)));
        plan.set_points(k, ThreadId(0), ThreadId(1), np.clone());
        assert_eq!(plan.points(k, ThreadId(0), ThreadId(1)), np);
        plan.set_points(k, ThreadId(0), ThreadId(1), BTreeSet::new());
        assert_eq!(plan.total_points(), 0);
    }

    #[test]
    fn relevant_branch_tracking() {
        let mut plan = CommPlan::new(2);
        assert!(plan.add_relevant_branch(ThreadId(1), InstrId(7)));
        assert!(!plan.add_relevant_branch(ThreadId(1), InstrId(7)));
        assert!(plan.relevant_branches(ThreadId(1)).contains(&InstrId(7)));
        assert!(plan.relevant_branches(ThreadId(0)).is_empty());
    }

    #[test]
    fn dynamic_cost_counts_pairs() {
        let mut b = FunctionBuilder::new("f");
        let c = b.const_(0);
        b.output(c);
        b.ret(None);
        let f = b.finish().unwrap();
        let profile = gmt_ir::Profile::uniform(&f, 10);
        let mut plan = CommPlan::new(2);
        plan.add_point(
            CommKind::Register(c),
            ThreadId(0),
            ThreadId(1),
            CommPoint::BlockStart(f.entry()),
        );
        // Entry weight = 10 (uniform), pair = produce+consume.
        assert_eq!(plan.dynamic_cost(&f, &profile), 20);
    }

    #[test]
    fn items_iterate_in_canonical_order() {
        let mut plan = CommPlan::new(3);
        plan.add_point(CommKind::Memory, ThreadId(2), ThreadId(0), CommPoint::Before(InstrId(0)));
        plan.add_point(
            CommKind::Register(Reg(0)),
            ThreadId(0),
            ThreadId(1),
            CommPoint::Before(InstrId(0)),
        );
        let items: Vec<_> = plan.items().collect();
        assert_eq!(items.len(), 2);
        assert!(items[0].kind <= items[1].kind);
    }
}
