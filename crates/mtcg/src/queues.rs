//! Queue allocation — the paper's footnote 1: "A separate queue is used
//! just for simplicity. Later, a queue-allocation algorithm can reduce
//! the number of queues necessary."
//!
//! Why sharing is sound: the producing and consuming threads traverse
//! the *same* sequence of communication points (both reproduce the
//! original control flow over their relevant branches), and within a
//! point all communication is emitted in one global order. For any two
//! operations with the same (from, to) thread pair, the producer's
//! produce order therefore equals the consumer's consume order — so any
//! *static* assignment of points to queues within a (from, to) group
//! keeps every FIFO's production and consumption sequences aligned,
//! value for value. Operations with different thread pairs must not
//! share (their relative order across threads is unconstrained).
//!
//! The allocator gives every (item, point) its own queue when the
//! budget allows, and otherwise folds each (from, to) group onto a fair
//! share of the budget, heaviest groups first.

use crate::codegen::QueueLabel;
use crate::MtcgError;
use gmt_ir::{Function, Profile};
use gmt_pdg::ThreadId;

/// How many queues code generation may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueBudget {
    /// One queue per communication point (the paper's simple scheme).
    #[default]
    Unlimited,
    /// At most this many queues (e.g. the synchronization array's 256).
    Limit(u32),
}

impl QueueBudget {
    /// The synchronization array of the paper's machine.
    pub const SYNC_ARRAY: QueueBudget = QueueBudget::Limit(256);
}

/// Computes the queue id for every communication occurrence.
///
/// `pairs[k]` is the (from, to) of the `k`-th occurrence in canonical
/// order. Returns the queue id per occurrence and the total number of
/// queues used.
///
/// # Errors
///
/// Returns [`MtcgError::QueueBudget`] if the budget is smaller than the
/// number of distinct (from, to) pairs (each pair needs at least one
/// private queue).
pub fn allocate(
    pairs: &[(ThreadId, ThreadId)],
    budget: QueueBudget,
) -> Result<(Vec<u32>, u32), MtcgError> {
    let n = pairs.len();
    let limit = match budget {
        QueueBudget::Unlimited => return Ok(((0..n as u32).collect(), n as u32)),
        QueueBudget::Limit(l) => l as usize,
    };
    if n <= limit {
        return Ok(((0..n as u32).collect(), n as u32));
    }
    // Group occurrences by thread pair.
    let mut groups: Vec<(ThreadId, ThreadId)> = pairs.to_vec();
    groups.sort();
    groups.dedup();
    if groups.len() > limit {
        return Err(MtcgError::QueueBudget {
            limit: limit as u32,
            pairs: groups.len() as u32,
        });
    }
    let counts: Vec<usize> = groups
        .iter()
        .map(|g| pairs.iter().filter(|p| *p == g).count())
        .collect();

    // Fair shares: start with 1 queue per group, hand out the remainder
    // by largest count (largest-remainder style).
    let mut share = vec![1usize; groups.len()];
    let mut left = limit - groups.len();
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(counts[g]));
    while left > 0 {
        let mut progressed = false;
        for &g in &order {
            if left == 0 {
                break;
            }
            if share[g] < counts[g] {
                share[g] += 1;
                left -= 1;
                progressed = true;
            }
        }
        if !progressed {
            break; // every group already has one queue per occurrence
        }
    }
    // Base offsets.
    let mut base = vec![0u32; groups.len()];
    let mut acc = 0u32;
    for (g, b) in base.iter_mut().enumerate() {
        *b = acc;
        acc += share[g] as u32;
    }
    // Static round-robin within each group.
    let mut next_in_group = vec![0usize; groups.len()];
    let mut out = Vec::with_capacity(n);
    for p in pairs {
        let g = groups.binary_search(p).expect("pair present");
        let q = base[g] + (next_in_group[g] % share[g]) as u32;
        next_in_group[g] += 1;
        out.push(q);
    }
    Ok((out, acc))
}

/// Profile-weighted per-queue depth allocation.
///
/// A real synchronization array does not give every queue the same
/// slack: queues carrying loop-iterated traffic need entries to
/// decouple the producer from the consumer (the whole point of DSWP's
/// depth-32 array), while queues touched once per invocation — loop
/// live-ins, control tokens on cold paths — work at depth 1.
///
/// A queue is *hot* when any of its communication points sits in a
/// block executed more often than the function entry (i.e. inside a
/// loop); hot queues get `hot_depth` entries, everything else gets 1.
/// The returned vector has one entry per queue, suitable for
/// `SaConfig::depths` and for `verify_mt`'s per-queue wait graph.
pub fn allocate_depths(
    f: &Function,
    profile: &Profile,
    labels: &[QueueLabel],
    num_queues: u32,
    hot_depth: usize,
) -> Vec<usize> {
    let weights = profile.block_weights(f);
    let entry_w = weights.get(f.entry().index()).copied().unwrap_or(0);
    let mut depths = vec![1usize; num_queues as usize];
    for l in labels {
        let b = l.point.block(f);
        let w = weights.get(b.index()).copied().unwrap_or(0);
        if w > entry_w {
            if let Some(d) = depths.get_mut(l.queue.index()) {
                *d = (*d).max(hot_depth.max(1));
            }
        }
    }
    depths
}

/// Profile-estimated dynamic traffic per queue: how many values each
/// queue carries over a run, assuming every communication occurrence
/// executes as often as its enclosing block. This is the static side
/// of the estimate-vs-measurement join — the measured counterpart is
/// the traced engine's per-queue produce count.
pub fn estimated_traffic(
    f: &Function,
    profile: &Profile,
    labels: &[QueueLabel],
    num_queues: u32,
) -> Vec<u64> {
    let weights = profile.block_weights(f);
    let mut traffic = vec![0u64; num_queues as usize];
    for l in labels {
        let b = l.point.block(f);
        let w = weights.get(b.index()).copied().unwrap_or(0);
        if let Some(t) = traffic.get_mut(l.queue.index()) {
            *t = t.saturating_add(w);
        }
    }
    traffic
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: u32) -> ThreadId {
        ThreadId(k)
    }

    #[test]
    fn unlimited_is_identity() {
        let pairs = vec![(t(0), t(1)); 5];
        let (qs, total) = allocate(&pairs, QueueBudget::Unlimited).unwrap();
        assert_eq!(qs, vec![0, 1, 2, 3, 4]);
        assert_eq!(total, 5);
    }

    #[test]
    fn under_budget_stays_private() {
        let pairs = vec![(t(0), t(1)), (t(1), t(0)), (t(0), t(1))];
        let (qs, total) = allocate(&pairs, QueueBudget::Limit(8)).unwrap();
        assert_eq!(total, 3);
        assert_eq!(qs.len(), 3);
        let mut sorted = qs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "all private: {qs:?}");
    }

    #[test]
    fn over_budget_folds_within_pairs_only() {
        // 6 occurrences of pair A, 2 of pair B, budget 4.
        let mut pairs = vec![(t(0), t(1)); 6];
        pairs.extend([(t(1), t(0)); 2]);
        let (qs, total) = allocate(&pairs, QueueBudget::Limit(4)).unwrap();
        assert!(total <= 4, "{total}");
        // Queues of the two groups never overlap.
        let a: std::collections::BTreeSet<u32> = qs[..6].iter().copied().collect();
        let b: std::collections::BTreeSet<u32> = qs[6..].iter().copied().collect();
        assert!(a.is_disjoint(&b), "{qs:?}");
    }

    #[test]
    fn heavier_group_gets_more_queues() {
        let mut pairs = vec![(t(0), t(1)); 10];
        pairs.extend([(t(1), t(0)); 2]);
        let (qs, _) = allocate(&pairs, QueueBudget::Limit(6)).unwrap();
        let a: std::collections::BTreeSet<u32> = qs[..10].iter().copied().collect();
        let b: std::collections::BTreeSet<u32> = qs[10..].iter().copied().collect();
        assert!(a.len() >= b.len(), "{qs:?}");
    }

    #[test]
    fn budget_below_pair_count_rejected() {
        let pairs = vec![(t(0), t(1)), (t(1), t(2)), (t(2), t(0))];
        let err = allocate(&pairs, QueueBudget::Limit(2)).unwrap_err();
        assert_eq!(err, MtcgError::QueueBudget { limit: 2, pairs: 3 });
    }

    #[test]
    fn round_robin_is_static_and_deterministic() {
        let pairs = vec![(t(0), t(1)); 4];
        let (q1, _) = allocate(&pairs, QueueBudget::Limit(2)).unwrap();
        let (q2, _) = allocate(&pairs, QueueBudget::Limit(2)).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(q1, vec![0, 1, 0, 1]);
    }
}
