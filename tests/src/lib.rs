//! Shared helpers for the cross-crate integration tests: a structured
//! random-program generator whose output always terminates, plus
//! compilation of the generated AST to `gmt-ir`.
//!
//! The generator produces *structured* programs (nested fixed-trip
//! loops and if/else over a small register pool and a small memory
//! object), which guarantees termination and verifiability while still
//! exercising every CFG shape the scheduling stack must handle:
//! hammocks, nests, loop-carried recurrences, and memory dependences.

use gmt_ir::{BinOp, Function, FunctionBuilder, Reg};
use gmt_testkit::{one_of, recursive, vec_of, Gen, Shrink};

/// Number of mutable program registers in the pool.
pub const REG_POOL: u32 = 6;
/// Cells in the single memory object.
pub const MEM_CELLS: u64 = 16;

/// A structured statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `pool[dst] = pool[a] <op> pool[b]`.
    Bin(u8, BinOp, u8, u8),
    /// `pool[dst] = imm`.
    Const(u8, i8),
    /// `pool[dst] = mem[pool[idx] & 15]`.
    Load(u8, u8),
    /// `mem[pool[idx] & 15] = pool[src]`.
    Store(u8, u8),
    /// `output pool[src]`.
    Output(u8),
    /// `if pool[c] != 0 { .. } else { .. }`.
    If(u8, Vec<Stmt>, Vec<Stmt>),
    /// Fixed-trip loop (1..=4 iterations) over the body.
    Loop(u8, Vec<Stmt>),
    /// `affmem[loopvar + (off & 7)] = pool[src]` — an *affine* store
    /// through the innermost loop counter (index 0 at top level),
    /// exercising the loop-aware memory disambiguation.
    StoreAffine(u8, u8),
    /// `pool[dst] = affmem[loopvar + (off & 7)]` — affine load.
    LoadAffine(u8, u8),
}

/// Any byte (indices, sources, trip counts).
fn byte() -> Gen<u8> {
    Gen::new(|rng| rng.next_u64() as u8)
}

/// Every [`BinOp`] the generator may emit.
pub fn bin_op_gen() -> Gen<BinOp> {
    one_of(
        [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Lt,
            BinOp::Eq,
            BinOp::Min,
            BinOp::Max,
            BinOp::Div,
            BinOp::Shr,
        ]
        .into_iter()
        .map(Gen::just)
        .collect(),
    )
}

/// A statement tree of bounded depth, covering every CFG shape the
/// scheduling stack must handle.
pub fn stmt_gen() -> Gen<Stmt> {
    let leaf = one_of(vec![
        byte()
            .zip(bin_op_gen())
            .zip(byte())
            .zip(byte())
            .map(|(((d, op), a), b)| Stmt::Bin(d, op, a, b)),
        byte().zip(Gen::new(|rng| rng.next_u64() as i8)).map(|(d, v)| Stmt::Const(d, v)),
        byte().zip(byte()).map(|(d, i)| Stmt::Load(d, i)),
        byte().zip(byte()).map(|(s, i)| Stmt::Store(s, i)),
        byte().zip(byte()).map(|(s, o)| Stmt::StoreAffine(s, o)),
        byte().zip(byte()).map(|(d, o)| Stmt::LoadAffine(d, o)),
        byte().map(Stmt::Output),
    ]);
    recursive(3, leaf, |inner| {
        one_of(vec![
            byte()
                .zip(vec_of(inner.clone(), 0, 4))
                .zip(vec_of(inner.clone(), 0, 4))
                .map(|((c, t), e)| Stmt::If(c, t, e)),
            byte().zip(vec_of(inner, 1, 4)).map(|(n, b)| Stmt::Loop(n, b)),
        ])
    })
}

/// A whole random program: 1–7 top-level statements.
pub fn program_gen() -> Gen<Vec<Stmt>> {
    vec_of(stmt_gen(), 1, 8)
}

impl Shrink for Stmt {
    fn shrinks(&self) -> Vec<Stmt> {
        match self {
            Stmt::Bin(d, op, a, b) => {
                let mut out: Vec<Stmt> =
                    (*d, *a, *b).shrinks().into_iter().map(|(d, a, b)| Stmt::Bin(d, *op, a, b)).collect();
                if *op != BinOp::Add {
                    out.insert(0, Stmt::Bin(*d, BinOp::Add, *a, *b));
                }
                out
            }
            Stmt::Const(d, v) => {
                (*d, *v).shrinks().into_iter().map(|(d, v)| Stmt::Const(d, v)).collect()
            }
            Stmt::Load(d, i) => (*d, *i).shrinks().into_iter().map(|(d, i)| Stmt::Load(d, i)).collect(),
            Stmt::Store(s, i) => (*s, *i).shrinks().into_iter().map(|(s, i)| Stmt::Store(s, i)).collect(),
            Stmt::StoreAffine(s, o) => {
                (*s, *o).shrinks().into_iter().map(|(s, o)| Stmt::StoreAffine(s, o)).collect()
            }
            Stmt::LoadAffine(d, o) => {
                (*d, *o).shrinks().into_iter().map(|(d, o)| Stmt::LoadAffine(d, o)).collect()
            }
            Stmt::Output(s) => s.shrinks().into_iter().map(Stmt::Output).collect(),
            Stmt::If(c, t, e) => {
                // Recurse on the statement lists, and offer each child
                // statement as a whole-node replacement.
                let mut out: Vec<Stmt> = t.iter().chain(e).cloned().collect();
                out.extend(t.shrinks().into_iter().map(|t| Stmt::If(*c, t, e.clone())));
                out.extend(e.shrinks().into_iter().map(|e| Stmt::If(*c, t.clone(), e)));
                out.extend(c.shrinks().into_iter().map(|c| Stmt::If(c, t.clone(), e.clone())));
                out
            }
            Stmt::Loop(n, b) => {
                let mut out: Vec<Stmt> = b.to_vec();
                out.extend(b.shrinks().into_iter().filter(|b| !b.is_empty()).map(|b| Stmt::Loop(*n, b)));
                out.extend(n.shrinks().into_iter().map(|n| Stmt::Loop(n, b.clone())));
                out
            }
        }
    }
}

/// Compiles a statement list into a verified, critical-edge-split
/// function that returns `pool[0]` and outputs along the way.
///
/// # Panics
///
/// Panics if the generated function fails verification (a generator
/// bug).
pub fn compile(program: &[Stmt]) -> Function {
    let mut b = FunctionBuilder::new("generated");
    let obj = b.object("mem", MEM_CELLS);
    let aff = b.object("affmem", MEM_CELLS);
    let pool: Vec<Reg> = (0..REG_POOL).map(|_| b.fresh_reg()).collect();
    for (k, &r) in pool.iter().enumerate() {
        b.const_into(r, k as i64 + 1);
    }
    let base = b.lea(obj, 0);
    let aff_base = b.lea(aff, 0);
    let mut env = Env { pool: pool.clone(), base, aff_base, counters: Vec::new() };
    emit_block(&mut b, program, &mut env);
    b.ret(Some(pool[0].into()));
    let mut f = b.finish_unverified();
    gmt_ir::split_critical_edges(&mut f);
    gmt_ir::verify(&f).expect("generated program verifies");
    f
}

struct Env {
    pool: Vec<Reg>,
    base: Reg,
    aff_base: Reg,
    /// Stack of live loop-counter registers (innermost last).
    counters: Vec<Reg>,
}

fn emit_block(b: &mut FunctionBuilder, stmts: &[Stmt], env: &mut Env) {
    for s in stmts {
        emit_stmt(b, s, env);
    }
}

fn emit_stmt(b: &mut FunctionBuilder, s: &Stmt, env: &mut Env) {
    let pool = env.pool.clone();
    let base = env.base;
    let p = |k: u8| pool[k as usize % pool.len()];
    match s {
        Stmt::Bin(d, op, x, y) => {
            b.bin_into(*op, p(*d), p(*x), p(*y));
        }
        Stmt::Const(d, v) => {
            b.const_into(p(*d), i64::from(*v));
        }
        Stmt::Load(d, idx) => {
            let masked = b.bin(BinOp::And, p(*idx), (MEM_CELLS - 1) as i64);
            let addr = b.bin(BinOp::Add, base, masked);
            b.load_into(p(*d), addr, 0);
        }
        Stmt::Store(src, idx) => {
            let masked = b.bin(BinOp::And, p(*idx), (MEM_CELLS - 1) as i64);
            let addr = b.bin(BinOp::Add, base, masked);
            b.store(addr, 0, p(*src));
        }
        Stmt::Output(src) => {
            b.output(p(*src));
        }
        Stmt::If(c, then_s, else_s) => {
            let then_bb = b.block("then");
            let else_bb = b.block("else");
            let join = b.block("join");
            b.branch(p(*c), then_bb, else_bb);
            b.switch_to(then_bb);
            emit_block(b, then_s, env);
            b.jump(join);
            b.switch_to(else_bb);
            emit_block(b, else_s, env);
            b.jump(join);
            b.switch_to(join);
        }
        Stmt::Loop(trips, body) => {
            let trips = i64::from(*trips % 4 + 1);
            let counter = b.fresh_reg();
            let header = b.block("loop_h");
            let body_bb = b.block("loop_b");
            let exit = b.block("loop_x");
            b.const_into(counter, 0);
            b.jump(header);
            b.switch_to(header);
            let c = b.bin(BinOp::Lt, counter, trips);
            b.branch(c, body_bb, exit);
            b.switch_to(body_bb);
            env.counters.push(counter);
            emit_block(b, body, env);
            env.counters.pop();
            b.bin_into(BinOp::Add, counter, counter, 1i64);
            b.jump(header);
            b.switch_to(exit);
        }
        Stmt::StoreAffine(src, off) => {
            let addr = affine_addr(b, env, *off);
            b.store(addr, 0, p(*src));
        }
        Stmt::LoadAffine(dst, off) => {
            let addr = affine_addr(b, env, *off);
            b.load_into(p(*dst), addr, 0);
        }
    }
}

/// `aff_base + innermost-counter + (off & 7)` — within bounds since
/// trip counts are at most 4 and `MEM_CELLS` is 16.
fn affine_addr(b: &mut FunctionBuilder, env: &Env, off: u8) -> Reg {
    let disp = i64::from(off & 7);
    match env.counters.last() {
        Some(&c) => {
            let t = b.bin(BinOp::Add, env.aff_base, c);
            b.bin(BinOp::Add, t, disp)
        }
        None => b.bin(BinOp::Add, env.aff_base, disp),
    }
}

/// A deterministic pseudo-random partition: instruction `k` goes to
/// thread `hash(seed, k) % n`.
pub fn seeded_partition(f: &Function, n: u32, seed: u64) -> gmt_pdg::Partition {
    let mut p = gmt_pdg::Partition::new(n);
    for (k, i) in f.all_instrs().enumerate() {
        let mut h = seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        p.assign(i, gmt_pdg::ThreadId((h % u64::from(n)) as u32));
    }
    p
}

/// A partition assigning whole blocks to threads by seed.
pub fn block_partition(f: &Function, n: u32, seed: u64) -> gmt_pdg::Partition {
    let mut p = gmt_pdg::Partition::new(n);
    for blk in f.blocks() {
        let mut h = (seed ^ u64::from(blk.0)).wrapping_mul(0x2545_F491_4F6C_DD1D);
        h ^= h >> 29;
        let t = gmt_pdg::ThreadId((h % u64::from(n)) as u32);
        for i in f.block(blk).all_instrs() {
            p.assign(i, t);
        }
    }
    p
}
