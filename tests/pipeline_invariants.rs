//! Cross-crate invariants of the full pipeline, checked on the real
//! benchmark catalog: the paper's structural claims beyond raw
//! correctness. Randomized coverage (partition choice × max-flow
//! algorithm) runs on the `gmt-testkit` harness with fixed default
//! seeds.

use gmt_core::{CocoConfig, Parallelizer, Scheduler};
use gmt_graph::MaxFlowAlgo;
use gmt_integration_tests::block_partition;
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_pdg::Pdg;
use gmt_sched::{has_cyclic_inter_thread_deps, is_pipeline};
use gmt_sim::{simulate, MachineConfig};
use gmt_testkit::{full_u64, prop_assert, prop_assert_eq, ranged, Checker};
use gmt_workloads::{catalog, exec_config};

/// DSWP output always satisfies the pipeline property (Property 1
/// discussion: a violated pipeline would create inter-thread dependence
/// cycles).
#[test]
fn dswp_is_always_a_pipeline() {
    for w in catalog() {
        let train = w.run_train().unwrap();
        let pdg = Pdg::build(&w.function);
        let r = Parallelizer::new(Scheduler::dswp(2))
            .parallelize(&w.function, &train.profile)
            .unwrap();
        assert!(is_pipeline(&pdg, &r.partition), "{}", w.benchmark);
        assert!(!has_cyclic_inter_thread_deps(&pdg, &r.partition), "{}", w.benchmark);
    }
}

/// The generated threads always pass the IR verifier and share the
/// original's object table.
#[test]
fn generated_threads_are_well_formed() {
    for w in catalog().into_iter().take(4) {
        let train = w.run_train().unwrap();
        for scheduler in [Scheduler::dswp(2), Scheduler::gremio(2)] {
            let r = Parallelizer::new(scheduler)
                .with_coco(CocoConfig::default())
                .parallelize(&w.function, &train.profile)
                .unwrap();
            for t in r.threads() {
                gmt_ir::verify(t).unwrap_or_else(|e| panic!("{}: {e}", w.benchmark));
                assert_eq!(t.objects().len(), w.function.objects().len());
                assert_eq!(t.params, w.function.params);
            }
        }
    }
}

/// COCO's plan estimate under the training profile never exceeds the
/// baseline's (min-cut optimality relative to MTCG's cut, which is
/// always feasible).
#[test]
fn coco_plan_estimate_never_worse_than_baseline() {
    for w in catalog() {
        let train = w.run_train().unwrap();
        let pdg = Pdg::build(&w.function);
        for scheduler in [Scheduler::dswp(2), Scheduler::gremio(2)] {
            let base = Parallelizer::new(scheduler.clone())
                .parallelize(&w.function, &train.profile)
                .unwrap();
            let coco = Parallelizer::new(scheduler.clone())
                .with_coco(CocoConfig::default())
                .parallelize_with_partition(
                    &w.function,
                    &train.profile,
                    &pdg,
                    base.partition.clone(),
                )
                .unwrap();
            let b = base.output.plan.dynamic_cost(&w.function, &train.profile);
            let c = coco.output.plan.dynamic_cost(&w.function, &train.profile);
            assert!(c <= b, "{} {:?}: {b} -> {c}", w.benchmark, scheduler);
        }
    }
}

/// The cycle-level simulator and the functional MT interpreter agree on
/// all observable results for parallelized code.
#[test]
fn simulator_agrees_with_functional_interpreter() {
    for w in catalog().into_iter().take(5) {
        let train = w.run_train().unwrap();
        let r = Parallelizer::new(Scheduler::dswp(2))
            .with_coco(CocoConfig::default())
            .parallelize(&w.function, &train.profile)
            .unwrap();
        let functional = run_mt(
            r.threads(),
            &w.train_args,
            w.init,
            &QueueConfig { num_queues: r.num_queues().max(1) as usize, capacity: 32 },
            &exec_config(),
        )
        .unwrap();
        let mut machine = MachineConfig::default();
        if r.num_queues() as usize > machine.sa.num_queues {
            machine.sa.num_queues = r.num_queues() as usize;
        }
        let timed = simulate(r.threads(), &w.train_args, w.init, &machine).unwrap();
        assert_eq!(timed.return_value, functional.return_value, "{}", w.benchmark);
        assert_eq!(timed.output, functional.output, "{}", w.benchmark);
        // Instruction counts agree too (issue == execute in both).
        let fi: u64 = functional
            .per_thread
            .iter()
            .map(gmt_ir::interp::DynCounts::total)
            .sum();
        let ti: u64 = timed.cores.iter().map(gmt_sim::CoreStats::total_instrs).sum();
        assert_eq!(fi, ti, "{}", w.benchmark);
    }
}

/// COCO is deterministic: same inputs, same plan (reproducibility).
#[test]
fn coco_is_deterministic() {
    let w = gmt_workloads::by_benchmark("ks").unwrap();
    let train = w.run_train().unwrap();
    let pdg = Pdg::build(&w.function);
    let partition = gmt_sched::gremio::partition(
        &w.function,
        &pdg,
        &train.profile,
        &gmt_sched::gremio::GremioConfig::default(),
    ).unwrap();
    let (p1, s1) = gmt_core::optimize(
        &w.function,
        &pdg,
        &partition,
        &train.profile,
        &CocoConfig::default(),
    );
    let (p2, s2) = gmt_core::optimize(
        &w.function,
        &pdg,
        &partition,
        &train.profile,
        &CocoConfig::default(),
    );
    assert_eq!(s1, s2);
    assert_eq!(format!("{p1:?}"), format!("{p2:?}"));
}

/// Algorithm 2 converges in few iterations on real kernels (the paper
/// argues quasi-topological pair order keeps iteration count low).
#[test]
fn coco_converges_quickly() {
    for w in catalog() {
        let train = w.run_train().unwrap();
        let pdg = Pdg::build(&w.function);
        let partition = gmt_sched::dswp::partition(
            &w.function,
            &pdg,
            &train.profile,
            &gmt_sched::dswp::DswpConfig::default(),
        ).unwrap();
        let (_, stats) = gmt_core::optimize(
            &w.function,
            &pdg,
            &partition,
            &train.profile,
            &CocoConfig::default(),
        );
        assert!(stats.iterations <= 4, "{}: {} iterations", w.benchmark, stats.iterations);
    }
}

/// Static profile estimation (the paper's [28] alternative) drives the
/// whole pipeline correctly, and preserves the headline ks win.
#[test]
fn static_profiles_work_end_to_end() {
    for w in catalog() {
        let estimated = gmt_ir::estimate_profile(&w.function);
        let r = Parallelizer::new(Scheduler::dswp(2))
            .with_coco(CocoConfig::default())
            .parallelize(&w.function, &estimated)
            .unwrap();
        let seq = w.run_train().unwrap();
        let mt = run_mt(
            r.threads(),
            &w.train_args,
            w.init,
            &QueueConfig { num_queues: r.num_queues().max(1) as usize, capacity: 32 },
            &exec_config(),
        )
        .unwrap();
        assert_eq!(mt.return_value, seq.return_value, "{}", w.benchmark);
        assert_eq!(mt.output, seq.output, "{}", w.benchmark);
    }
    // The Figure-4 sinking still happens with estimated weights.
    let w = gmt_workloads::by_benchmark("ks").unwrap();
    let estimated = gmt_ir::estimate_profile(&w.function);
    let pdg = Pdg::build(&w.function);
    let partition = gmt_sched::gremio::partition(
        &w.function,
        &pdg,
        &estimated,
        &gmt_sched::gremio::GremioConfig::default(),
    ).unwrap();
    let base = gmt_mtcg::baseline_plan(&w.function, &pdg, &partition).unwrap();
    let (coco, _) = gmt_core::optimize(
        &w.function,
        &pdg,
        &partition,
        &estimated,
        &CocoConfig::default(),
    );
    assert!(
        coco.dynamic_cost(&w.function, &estimated) <= base.dynamic_cost(&w.function, &estimated),
        "COCO must not cost more under static estimates either"
    );
}

/// COCO on *arbitrary* block partitions of the real kernels — not
/// just the partitions DSWP/GREMIO would pick — preserves semantics
/// and never estimates worse than the baseline plan, under both
/// max-flow algorithms. 32 cases over {workload × seed × algo} give
/// each `MaxFlowAlgo` variant ample coverage.
#[test]
fn coco_on_random_block_partitions_both_algos() {
    let workloads = catalog();
    let gen = ranged(0usize, workloads.len()).zip(full_u64()).zip(ranged(0u8, 2));
    Checker::new("pipeline_invariants::coco_on_random_block_partitions_both_algos")
        .cases(32)
        .run(&gen, |&((widx, seed), algo_idx)| {
            let w = &workloads[widx % workloads.len()];
            let algo = if algo_idx % 2 == 0 { MaxFlowAlgo::EdmondsKarp } else { MaxFlowAlgo::Dinic };
            let seq = w.run_train().expect("sequential");
            let pdg = Pdg::build(&w.function);
            let partition = block_partition(&w.function, 2, seed);
            let config = CocoConfig { algo, ..CocoConfig::default() };
            let base = gmt_mtcg::baseline_plan(&w.function, &pdg, &partition).unwrap();
            let (plan, _) = gmt_core::optimize(&w.function, &pdg, &partition, &seq.profile, &config);
            prop_assert!(
                plan.dynamic_cost(&w.function, &seq.profile)
                    <= base.dynamic_cost(&w.function, &seq.profile),
                "{}: COCO estimate must not exceed baseline",
                w.benchmark
            );
            let out = gmt_mtcg::generate_with_plan(&w.function, &partition, plan).expect("codegen");
            let mt = run_mt(
                &out.threads,
                &w.train_args,
                w.init,
                &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
                &exec_config(),
            )
            .expect("mt run");
            prop_assert_eq!(mt.return_value, seq.return_value, "{}", w.benchmark);
            prop_assert_eq!(&mt.output, &seq.output, "{}", w.benchmark);
            Ok(())
        });
}

/// The paper's conclusion claim: with more threads, the communication
/// fraction grows — and COCO's absolute savings do not shrink.
#[test]
fn more_threads_more_communication() {
    for bench in ["ks", "adpcmdec", "458.sjeng"] {
        let w = gmt_workloads::by_benchmark(bench).unwrap();
        let points = gmt_harness::thread_scaling(&w, gmt_harness::SchedulerKind::Dswp, &[2, 4])
            .expect("thread scaling");
        assert_eq!(points.len(), 2);
        assert!(
            points[1].comm_fraction_pct >= points[0].comm_fraction_pct * 0.8,
            "{bench}: comm fraction should not collapse with more threads: {points:?}"
        );
        for p in &points {
            assert!(p.coco_comm <= p.mtcg_comm, "{bench}: {points:?}");
        }
    }
}
