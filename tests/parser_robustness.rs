//! Property: `gmt_ir::parse` is total — it returns `Ok` or a
//! [`ParseError`] on *any* input, never panicking and never blowing up
//! memory. The generator prints structurally valid functions and then
//! mangles the text (dropped/duplicated/swapped lines, truncations,
//! spliced junk tokens, digit inflation), which is exactly the shape of
//! input a hand-edited fixture or a corrupted dump produces.
//!
//! Regression test for the PR-4 parser fixes: pre-fix, a duplicated
//! `ret` line tripped `Function::set_terminator`'s assert, and an
//! inflated block/register index (`B99999999999:`) turned one line
//! into a multi-gigabyte allocation.

use gmt_integration_tests::{compile, program_gen, Stmt};
use gmt_ir::{display, parse};
use gmt_testkit::{full_u64, prop_assert, Checker, Gen, TestRng};

/// One random text edit. Keeps everything on char boundaries; the
/// printer only emits ASCII, but the mutations themselves may splice
/// multi-byte junk, so later edits must stay boundary-safe.
fn mutate_once(text: &str, rng: &mut TestRng) -> String {
    let lines: Vec<&str> = text.lines().collect();
    match rng.range_usize(0, 6) {
        // Drop a random line (loses headers, terminators, `func`).
        0 if !lines.is_empty() => {
            let k = rng.range_usize(0, lines.len() - 1);
            lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != k)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n")
        }
        // Duplicate a random line (double terminators, double headers).
        1 if !lines.is_empty() => {
            let k = rng.range_usize(0, lines.len() - 1);
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            for (i, l) in lines.iter().enumerate() {
                out.push(l);
                if i == k {
                    out.push(l);
                }
            }
            out.join("\n")
        }
        // Swap two lines (instructions before headers, late `func`).
        2 if lines.len() >= 2 => {
            let a = rng.range_usize(0, lines.len() - 1);
            let b = rng.range_usize(0, lines.len() - 1);
            let mut out: Vec<&str> = lines.clone();
            out.swap(a, b);
            out.join("\n")
        }
        // Truncate at an arbitrary char boundary (mid-token cuts).
        3 if !text.is_empty() => {
            let mut cut = rng.range_usize(0, text.len());
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_string()
        }
        // Splice a junk token into a random line.
        4 => {
            let junk = [
                "ret",
                "B99999999999:",
                "r4294967295 = const 1",
                "jump B4000000000",
                "produce q0 =",
                "br ? :",
                "store [ =",
                "r1 = Mul r0,",
                "\u{fffd}",
            ];
            let j = junk[rng.range_usize(0, junk.len() - 1)];
            if lines.is_empty() {
                j.to_string()
            } else {
                let k = rng.range_usize(0, lines.len() - 1);
                let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
                for (i, l) in lines.iter().enumerate() {
                    out.push(l);
                    if i == k {
                        out.push(j);
                    }
                }
                out.join("\n")
            }
        }
        // Inflate the first digit-run on a random line — huge block
        // ids, register numbers, offsets, trip counts.
        _ => {
            if lines.is_empty() {
                return String::new();
            }
            let k = rng.range_usize(0, lines.len() - 1);
            let mut out = String::new();
            for (i, l) in lines.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                if i == k {
                    let mut replaced = false;
                    for (ci, ch) in l.char_indices() {
                        if !replaced && ch.is_ascii_digit() {
                            out.push_str(&l[..ci]);
                            out.push_str("99999999999");
                            out.push_str(l[ci..].trim_start_matches(|c: char| c.is_ascii_digit()));
                            replaced = true;
                            break;
                        }
                    }
                    if !replaced {
                        out.push_str(l);
                    }
                } else {
                    out.push_str(l);
                }
            }
            out
        }
    }
}

/// Printed functions survive a round trip before any mangling.
#[test]
fn printed_functions_reparse() {
    Checker::new("parser_robustness::printed_functions_reparse").cases(32).run(
        &program_gen(),
        |program: &Vec<Stmt>| {
            let f = compile(program);
            let text = display(&f).to_string();
            let g = parse(&text).map_err(|e| format!("roundtrip parse failed: {e}"))?;
            prop_assert!(g.num_blocks() == f.num_blocks(), "block count survives");
            Ok(())
        },
    );
}

/// Parse never panics on mangled text. The property body calls `parse`
/// on 1–4 stacked mutations of a printed function; any panic (assert,
/// overflow, OOM-by-allocation-bomb aborts too slowly to observe — the
/// index caps turn those into errors) fails the test.
#[test]
fn parse_never_panics_on_mangled_text() {
    let gen: Gen<(Vec<Stmt>, u64)> = program_gen().zip(full_u64());
    Checker::new("parser_robustness::parse_never_panics_on_mangled_text").cases(192).run(
        &gen,
        |(program, seed)| {
            let f = compile(program);
            let mut text = display(&f).to_string();
            let mut rng = TestRng::new(*seed);
            for _ in 0..rng.range_usize(1, 4) {
                text = mutate_once(&text, &mut rng);
                // Totality: Ok or Err, never a panic. A successful
                // parse must itself survive re-printing and re-parsing.
                if let Ok(g) = parse(&text) {
                    let again = display(&g).to_string();
                    prop_assert!(
                        parse(&again).is_ok(),
                        "accepted text must round-trip: {again}"
                    );
                }
            }
            Ok(())
        },
    );
}
