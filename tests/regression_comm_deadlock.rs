//! Regression: COCO communication deadlock, shrunken from the
//! `coco_preserves_semantics_and_never_costs_more` property.
//!
//! Re-encoded from the historical proptest regression entry
//! (`shrinks to program = [Loop(1, [Store(122, 0), Loop(0, [Bin(229,
//! Add, 0, 0)])]), Store(0, 31)], seed = 12601032260667469312,
//! penalties = false, dinic = false`) as an explicit `gmt-testkit`-era
//! case: the shrunken program and partition seed are pinned below, so
//! the case survives any change to generator draw order.

use gmt_core::{optimize, CocoConfig};
use gmt_integration_tests::{compile, seeded_partition, Stmt};
use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_ir::BinOp;
use gmt_pdg::Pdg;

#[test]
fn shrunken_coco_deadlock_case() {
    let program = vec![
        Stmt::Loop(
            1,
            vec![
                Stmt::Store(122, 0),
                Stmt::Loop(0, vec![Stmt::Bin(229, BinOp::Add, 0, 0)]),
            ],
        ),
        Stmt::Store(0, 31),
    ];
    let f = compile(&program);
    println!("{}", gmt_ir::display(&f));
    let seq = run(&f, &[], &ExecConfig::default()).unwrap();
    let partition = seeded_partition(&f, 2, 12601032260667469312);
    for i in f.all_instrs() {
        println!("{i:?} -> {:?}   {}", partition.thread_of(i), f.instr(i));
    }
    let pdg = Pdg::build(&f);
    let config = CocoConfig { control_penalties: false, ..CocoConfig::default() };
    let (plan, _) = optimize(&f, &pdg, &partition, &seq.profile, &config);
    println!("plan: {plan:#?}");
    let out = gmt_mtcg::generate_with_plan(&f, &partition, plan).unwrap();
    for t in &out.threads {
        println!("{}", gmt_ir::display(t));
    }
    let mt = run_mt(
        &out.threads,
        &[],
        |_, _| {},
        &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
        &ExecConfig { max_steps: 1_000_000 },
    )
    .expect("must not deadlock");
    assert_eq!(mt.return_value, seq.return_value);
    assert_eq!(mt.output, seq.output);
    assert_eq!(mt.memory.cells(), seq.memory.cells());
}
