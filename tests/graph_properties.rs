//! Property tests of the graph substrate: min-cut correctness on
//! random flow networks (duality with disconnection, algorithm
//! agreement, multicut soundness), on the `gmt-testkit` harness with
//! fixed default seeds.

use gmt_graph::{multicut, Capacity, Commodity, FlowNetwork, MaxFlowAlgo, NodeId};
use gmt_testkit::{prop_assert, prop_assert_eq, ranged, vec_of, Checker, Gen, Shrink};

/// A random sparse network description: node count and weighted arcs.
#[derive(Clone, Debug)]
struct NetDesc {
    nodes: usize,
    arcs: Vec<(usize, usize, u64)>,
}

impl Shrink for NetDesc {
    fn shrinks(&self) -> Vec<NetDesc> {
        // Node count stays fixed (arc endpoints are reduced modulo it);
        // shrinking means dropping/simplifying arcs.
        self.arcs
            .shrinks()
            .into_iter()
            .map(|arcs| NetDesc { nodes: self.nodes, arcs })
            .collect()
    }
}

fn net_gen() -> Gen<NetDesc> {
    ranged(3usize, 12).flat_map(|nodes| {
        vec_of(
            ranged(0usize, nodes).zip(ranged(0usize, nodes)).zip(ranged(1u64, 50)),
            1,
            40,
        )
        .map(move |arcs| NetDesc {
            nodes,
            arcs: arcs
                .into_iter()
                .map(|((a, b), w)| (a, b, w))
                .filter(|&(a, b, _)| a != b)
                .collect(),
        })
    })
}

fn build(desc: &NetDesc) -> FlowNetwork {
    let mut net = FlowNetwork::new();
    net.add_nodes(desc.nodes);
    for &(a, b, w) in &desc.arcs {
        // Shrinking may zero a weight or fold endpoints together; keep
        // the built network well-formed regardless.
        if a == b {
            continue;
        }
        net.add_arc(
            NodeId((a % desc.nodes) as u32),
            NodeId((b % desc.nodes) as u32),
            Capacity::finite(w.max(1)),
        );
    }
    net
}

/// Reachability in the network with the given arcs removed.
fn reaches_without(net: &FlowNetwork, removed: &[gmt_graph::ArcId], s: NodeId, t: NodeId) -> bool {
    let mut adj = vec![Vec::new(); net.node_count()];
    for (id, arc) in net.arcs() {
        if !removed.contains(&id) && !arc.capacity.is_zero() {
            adj[arc.from.index()].push(arc.to);
        }
    }
    let mut seen = vec![false; net.node_count()];
    let mut stack = vec![s];
    seen[s.index()] = true;
    while let Some(x) = stack.pop() {
        if x == t {
            return true;
        }
        for &y in &adj[x.index()] {
            if !seen[y.index()] {
                seen[y.index()] = true;
                stack.push(y);
            }
        }
    }
    false
}

/// Edmonds–Karp and Dinic compute the same max-flow value, and the
/// extracted cut (a) sums to that value and (b) disconnects sink
/// from source.
#[test]
fn mincut_duality_and_disconnection() {
    Checker::new("graph_properties::mincut_duality_and_disconnection").cases(128).run(
        &net_gen(),
        |desc| {
            let net = build(desc);
            let s = NodeId(0);
            let t = NodeId((desc.nodes - 1) as u32);
            let ek = net.min_cut_with(s, t, MaxFlowAlgo::EdmondsKarp);
            let di = net.min_cut_with(s, t, MaxFlowAlgo::Dinic);
            prop_assert_eq!(ek.value, di.value);
            if ek.is_feasible() {
                let total: Capacity = ek.arcs.iter().map(|&a| net.arc(a).capacity).sum();
                prop_assert_eq!(total, ek.value);
                prop_assert!(!reaches_without(&net, &ek.arcs, s, t), "cut must disconnect");
            }
            Ok(())
        },
    );
}

/// Removing any single arc from a min cut reconnects s to t (cuts
/// are minimal, not just valid).
#[test]
fn mincut_is_minimal() {
    Checker::new("graph_properties::mincut_is_minimal").cases(128).run(&net_gen(), |desc| {
        let net = build(desc);
        let s = NodeId(0);
        let t = NodeId((desc.nodes - 1) as u32);
        let cut = net.min_cut(s, t);
        if cut.is_feasible() && !cut.arcs.is_empty() {
            for k in 0..cut.arcs.len() {
                let mut partial = cut.arcs.clone();
                partial.remove(k);
                prop_assert!(
                    reaches_without(&net, &partial, s, t),
                    "dropping a cut arc must reconnect"
                );
            }
        }
        Ok(())
    });
}

/// The multicut heuristic disconnects every feasible commodity and
/// never costs more than the sum of independent per-pair cuts.
#[test]
fn multicut_soundness() {
    let gen = net_gen().zip(vec_of(ranged(0usize, 12).zip(ranged(0usize, 12)), 1, 4));
    Checker::new("graph_properties::multicut_soundness").cases(128).run(
        &gen,
        |(desc, pair_seeds)| {
            let net = build(desc);
            let commodities: Vec<Commodity> = pair_seeds
                .iter()
                .map(|&(a, b)| Commodity {
                    source: NodeId((a % desc.nodes) as u32),
                    sink: NodeId((b % desc.nodes) as u32),
                })
                .collect();
            let result = multicut(&net, &commodities);
            let mut independent_total = Capacity::ZERO;
            for (c, &feasible) in commodities.iter().zip(&result.feasible) {
                if c.source == c.sink {
                    continue;
                }
                let single = net.min_cut(c.source, c.sink);
                prop_assert_eq!(feasible, single.is_feasible());
                if feasible {
                    prop_assert!(
                        !reaches_without(&net, &result.arcs, c.source, c.sink),
                        "feasible commodity must be disconnected"
                    );
                    independent_total += single.value;
                }
            }
            prop_assert!(result.value <= independent_total, "sharing must not cost extra");
            Ok(())
        },
    );
}
