//! Regression: output ordering across threads under DSWP + COCO
//! (memory-dependence direction), shrunken from the
//! `partitioners_preserve_semantics` property.
//!
//! Re-encoded from the historical proptest regression entry
//! (`shrinks to program = [Loop(0, [If(19, [], [Load(6, 7)])]),
//! Loop(0, [If(0, [Output(8)], [])]), Output(1)], use_gremio =
//! false`) as an explicit `gmt-testkit`-era case with the shrunken
//! program pinned below.

use gmt_core::{CocoConfig, Parallelizer, Scheduler};
use gmt_integration_tests::{compile, Stmt};
use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_pdg::Pdg;

#[test]
fn outputs_stay_ordered_under_dswp_coco() {
    let program = vec![
        Stmt::Loop(0, vec![Stmt::If(19, vec![], vec![Stmt::Load(6, 7)])]),
        Stmt::Loop(0, vec![Stmt::If(0, vec![Stmt::Output(8)], vec![])]),
        Stmt::Output(1),
    ];
    let f = compile(&program);
    let seq = run(&f, &[], &ExecConfig::default()).unwrap();
    println!("seq output: {:?}", seq.output);
    let pdg = Pdg::build(&f);
    let dpos: Vec<_> = pdg
        .deps()
        .iter()
        .filter(|d| d.kind == gmt_pdg::DepKind::Memory)
        .collect();
    println!("memory deps: {dpos:?}");

    let base = Parallelizer::new(Scheduler::dswp(2))
        .parallelize(&f, &seq.profile)
        .unwrap();
    println!("partition sizes: {:?}", base.partition.static_sizes());
    for i in f.all_instrs() {
        if f.instr(i).is_mem_op() {
            println!("  {i:?} {:?} -> {:?}", f.instr(i), base.partition.thread_of(i));
        }
    }
    let coco = Parallelizer::new(Scheduler::dswp(2))
        .with_coco(CocoConfig::default())
        .parallelize(&f, &seq.profile)
        .unwrap();
    println!("baseline plan: {:?}", base.output.plan);
    println!("coco plan: {:?}", coco.output.plan);
    for (name, r) in [("base", &base), ("coco", &coco)] {
        let mt = run_mt(
            r.threads(),
            &[],
            |_, _| {},
            &QueueConfig { num_queues: r.num_queues().max(1) as usize, capacity: 32 },
            &ExecConfig::default(),
        )
        .unwrap();
        println!("{name}: output {:?}", mt.output);
        assert_eq!(mt.output, seq.output, "{name}");
    }
}
