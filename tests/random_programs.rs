//! Property-based end-to-end testing: random structured programs ×
//! random partitions × {MTCG, MTCG+COCO} must always reproduce the
//! sequential semantics (return value, output trace, final memory).

use gmt_core::{optimize, CocoConfig};
use gmt_graph::MaxFlowAlgo;
use gmt_integration_tests::{compile, seeded_partition, Stmt};
use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_ir::BinOp;
use gmt_pdg::Pdg;
use proptest::prelude::*;

fn exec() -> ExecConfig {
    ExecConfig { max_steps: 5_000_000 }
}

/// Strategy for a statement tree of bounded depth/size.
fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (any::<u8>(), bin_op(), any::<u8>(), any::<u8>())
            .prop_map(|(d, op, a, b)| Stmt::Bin(d, op, a, b)),
        (any::<u8>(), any::<i8>()).prop_map(|(d, v)| Stmt::Const(d, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, i)| Stmt::Load(d, i)),
        (any::<u8>(), any::<u8>()).prop_map(|(s, i)| Stmt::Store(s, i)),
        (any::<u8>(), any::<u8>()).prop_map(|(s, o)| Stmt::StoreAffine(s, o)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, o)| Stmt::LoadAffine(d, o)),
        any::<u8>().prop_map(Stmt::Output),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            (any::<u8>(), prop::collection::vec(inner.clone(), 0..4),
             prop::collection::vec(inner.clone(), 0..4))
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            (any::<u8>(), prop::collection::vec(inner, 1..4))
                .prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    })
}

fn bin_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Lt),
        Just(BinOp::Eq),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::Div),
        Just(BinOp::Shr),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Stmt>> {
    prop::collection::vec(stmt_strategy(), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// MTCG with the baseline plan preserves semantics under arbitrary
    /// instruction-granularity partitions and both queue depths.
    #[test]
    fn mtcg_preserves_semantics(program in program_strategy(), seed in any::<u64>(), n in 2u32..4) {
        let f = compile(&program);
        let seq = run(&f, &[], &exec()).expect("sequential");
        let partition = seeded_partition(&f, n, seed);
        let pdg = Pdg::build(&f);
        let out = gmt_mtcg::generate(&f, &pdg, &partition).expect("mtcg");
        for cap in [1usize, 32] {
            let mt = run_mt(
                &out.threads,
                &[],
                |_, _| {},
                &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: cap },
                &exec(),
            ).expect("mt run");
            prop_assert_eq!(mt.return_value, seq.return_value);
            prop_assert_eq!(&mt.output, &seq.output);
            prop_assert_eq!(mt.memory.cells(), seq.memory.cells());
        }
    }

    /// COCO-optimized plans preserve semantics and never cost more
    /// dynamic communication than the baseline.
    #[test]
    fn coco_preserves_semantics_and_never_costs_more(
        program in program_strategy(),
        seed in any::<u64>(),
        penalties in any::<bool>(),
        dinic in any::<bool>(),
    ) {
        let f = compile(&program);
        let seq = run(&f, &[], &exec()).expect("sequential");
        let partition = seeded_partition(&f, 2, seed);
        let pdg = Pdg::build(&f);
        let profile = seq.profile.clone();
        let config = CocoConfig {
            algo: if dinic { MaxFlowAlgo::Dinic } else { MaxFlowAlgo::EdmondsKarp },
            control_penalties: penalties,
            shared_memory_multicut: true,
            max_iterations: 10,
        };
        let (plan, _) = optimize(&f, &pdg, &partition, &profile, &config);
        let coco_out = gmt_mtcg::generate_with_plan(&f, &partition, plan).expect("coco codegen");
        let base_out = gmt_mtcg::generate(&f, &pdg, &partition).expect("mtcg");
        let run_one = |out: &gmt_mtcg::MtcgOutput| {
            run_mt(
                &out.threads,
                &[],
                |_, _| {},
                &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
                &exec(),
            ).expect("mt run")
        };
        let coco_run = run_one(&coco_out);
        prop_assert_eq!(coco_run.return_value, seq.return_value);
        prop_assert_eq!(&coco_run.output, &seq.output);
        prop_assert_eq!(coco_run.memory.cells(), seq.memory.cells());
        // The profile here is exact (same input), so COCO must not
        // increase dynamic communication.
        let base_run = run_one(&base_out);
        prop_assert!(
            coco_run.totals().comm_total() <= base_run.totals().comm_total(),
            "COCO increased comm: {} -> {}",
            base_run.totals().comm_total(),
            coco_run.totals().comm_total()
        );
    }

    /// The full Parallelizer (DSWP and GREMIO partitioners) preserves
    /// semantics on random programs.
    #[test]
    fn partitioners_preserve_semantics(program in program_strategy(), use_gremio in any::<bool>()) {
        let f = compile(&program);
        let seq = run(&f, &[], &exec()).expect("sequential");
        let scheduler = if use_gremio {
            gmt_core::Scheduler::gremio(2)
        } else {
            gmt_core::Scheduler::dswp(2)
        };
        let result = gmt_core::Parallelizer::new(scheduler)
            .with_coco(CocoConfig::default())
            .parallelize(&f, &seq.profile)
            .expect("parallelize");
        let mt = run_mt(
            result.threads(),
            &[],
            |_, _| {},
            &QueueConfig {
                num_queues: result.num_queues().max(1) as usize,
                capacity: if use_gremio { 1 } else { 32 },
            },
            &exec(),
        ).expect("mt run");
        prop_assert_eq!(mt.return_value, seq.return_value);
        prop_assert_eq!(&mt.output, &seq.output);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The textual printer/parser round-trip preserves semantics and
    /// reaches a fixed point after one iteration (labels are the only
    /// lossy part).
    #[test]
    fn printer_parser_roundtrip(program in program_strategy()) {
        let f = compile(&program);
        let text1 = gmt_ir::display(&f).to_string();
        let g = gmt_ir::parse(&text1).expect("parse printed IR");
        let text2 = gmt_ir::display(&g).to_string();
        let h = gmt_ir::parse(&text2).expect("parse round-tripped IR");
        prop_assert_eq!(&gmt_ir::display(&h).to_string(), &text2, "fixed point");
        let rf = run(&f, &[], &exec()).expect("original runs");
        let rg = run(&g, &[], &exec()).expect("round-tripped runs");
        prop_assert_eq!(rf.return_value, rg.return_value);
        prop_assert_eq!(&rf.output, &rg.output);
        prop_assert_eq!(rf.counts.total(), rg.counts.total());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Under an *exact* profile (same input), a plan's estimated
    /// dynamic cost must equal the measured dynamic communication —
    /// the planner's cost model and the generated code agree, both for
    /// baseline MTCG and for COCO plans.
    #[test]
    fn plan_cost_equals_measured_communication(program in program_strategy(), seed in any::<u64>()) {
        let f = compile(&program);
        let seq = run(&f, &[], &exec()).expect("sequential");
        let partition = seeded_partition(&f, 2, seed);
        let pdg = Pdg::build(&f);

        let base_plan = gmt_mtcg::baseline_plan(&f, &pdg, &partition);
        let (coco_plan, _) = optimize(&f, &pdg, &partition, &seq.profile, &CocoConfig::default());
        for plan in [base_plan, coco_plan] {
            let estimated = plan.dynamic_cost(&f, &seq.profile);
            let out = gmt_mtcg::generate_with_plan(&f, &partition, plan).expect("codegen");
            let mt = run_mt(
                &out.threads,
                &[],
                |_, _| {},
                &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
                &exec(),
            ).expect("mt run");
            prop_assert_eq!(
                estimated,
                mt.totals().comm_total(),
                "plan cost model must match reality"
            );
        }
    }
}
