//! Property-based end-to-end testing: random structured programs ×
//! random partitions × {MTCG, MTCG+COCO} must always reproduce the
//! sequential semantics (return value, output trace, final memory).
//!
//! Runs on the in-tree `gmt-testkit` harness. Replay a failure with
//! `GMT_TESTKIT_SEED=<seed from the failure message>`; historical
//! shrunken failures live on as `tests/regression_*.rs`.

use gmt_core::{optimize, CocoConfig};
use gmt_graph::MaxFlowAlgo;
use gmt_integration_tests::{compile, program_gen, seeded_partition, Stmt};
use gmt_ir::interp::{run, ExecConfig};
use gmt_ir::interp_mt::{run_mt, QueueConfig};
use gmt_pdg::Pdg;
use gmt_testkit::{full_u64, prop_assert, prop_assert_eq, ranged, Checker, Gen};

fn exec() -> ExecConfig {
    ExecConfig { max_steps: 5_000_000 }
}

/// MTCG with the baseline plan preserves semantics under arbitrary
/// instruction-granularity partitions and both queue depths.
#[test]
fn mtcg_preserves_semantics() {
    let gen: Gen<(Vec<Stmt>, u64, u32)> =
        program_gen().zip(full_u64()).zip(ranged(2u32, 4)).map(|((p, s), n)| (p, s, n));
    Checker::new("random_programs::mtcg_preserves_semantics").cases(48).run(
        &gen,
        |(program, seed, n)| {
            let f = compile(program);
            let seq = run(&f, &[], &exec()).expect("sequential");
            let partition = seeded_partition(&f, *n, *seed);
            let pdg = Pdg::build(&f);
            let out = gmt_mtcg::generate(&f, &pdg, &partition).expect("mtcg");
            for cap in [1usize, 32] {
                let mt = run_mt(
                    &out.threads,
                    &[],
                    |_, _| {},
                    &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: cap },
                    &exec(),
                )
                .expect("mt run");
                prop_assert_eq!(mt.return_value, seq.return_value);
                prop_assert_eq!(&mt.output, &seq.output);
                prop_assert_eq!(mt.memory.cells(), seq.memory.cells());
            }
            Ok(())
        },
    );
}

/// COCO-optimized plans preserve semantics and never cost more
/// dynamic communication than the baseline.
#[test]
fn coco_preserves_semantics_and_never_costs_more() {
    let gen: Gen<(Vec<Stmt>, u64, bool, bool)> = program_gen()
        .zip(full_u64())
        .zip(ranged(0u8, 4))
        .map(|((p, s), flags)| (p, s, flags & 1 != 0, flags & 2 != 0));
    Checker::new("random_programs::coco_preserves_semantics_and_never_costs_more")
        .cases(48)
        .run(&gen, |(program, seed, penalties, dinic)| {
            let f = compile(program);
            let seq = run(&f, &[], &exec()).expect("sequential");
            let partition = seeded_partition(&f, 2, *seed);
            let pdg = Pdg::build(&f);
            let profile = seq.profile.clone();
            let config = CocoConfig {
                algo: if *dinic { MaxFlowAlgo::Dinic } else { MaxFlowAlgo::EdmondsKarp },
                control_penalties: *penalties,
                shared_memory_multicut: true,
                max_iterations: 10,
            };
            let (plan, _) = optimize(&f, &pdg, &partition, &profile, &config);
            let coco_out = gmt_mtcg::generate_with_plan(&f, &partition, plan).expect("coco codegen");
            let base_out = gmt_mtcg::generate(&f, &pdg, &partition).expect("mtcg");
            let run_one = |out: &gmt_mtcg::MtcgOutput| {
                run_mt(
                    &out.threads,
                    &[],
                    |_, _| {},
                    &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
                    &exec(),
                )
                .expect("mt run")
            };
            let coco_run = run_one(&coco_out);
            prop_assert_eq!(coco_run.return_value, seq.return_value);
            prop_assert_eq!(&coco_run.output, &seq.output);
            prop_assert_eq!(coco_run.memory.cells(), seq.memory.cells());
            // The profile here is exact (same input), so COCO must not
            // increase dynamic communication.
            let base_run = run_one(&base_out);
            prop_assert!(
                coco_run.totals().comm_total() <= base_run.totals().comm_total(),
                "COCO increased comm: {} -> {}",
                base_run.totals().comm_total(),
                coco_run.totals().comm_total()
            );
            Ok(())
        });
}

/// The full Parallelizer (DSWP and GREMIO partitioners) preserves
/// semantics on random programs.
#[test]
fn partitioners_preserve_semantics() {
    let gen: Gen<(Vec<Stmt>, bool)> =
        program_gen().zip(ranged(0u8, 2)).map(|(p, g)| (p, g != 0));
    Checker::new("random_programs::partitioners_preserve_semantics").cases(48).run(
        &gen,
        |(program, use_gremio)| {
            let f = compile(program);
            let seq = run(&f, &[], &exec()).expect("sequential");
            let scheduler = if *use_gremio {
                gmt_core::Scheduler::gremio(2)
            } else {
                gmt_core::Scheduler::dswp(2)
            };
            let result = gmt_core::Parallelizer::new(scheduler)
                .with_coco(CocoConfig::default())
                .parallelize(&f, &seq.profile)
                .expect("parallelize");
            let mt = run_mt(
                result.threads(),
                &[],
                |_, _| {},
                &QueueConfig {
                    num_queues: result.num_queues().max(1) as usize,
                    capacity: if *use_gremio { 1 } else { 32 },
                },
                &exec(),
            )
            .expect("mt run");
            prop_assert_eq!(mt.return_value, seq.return_value);
            prop_assert_eq!(&mt.output, &seq.output);
            Ok(())
        },
    );
}

/// The textual printer/parser round-trip preserves semantics and
/// reaches a fixed point after one iteration (labels are the only
/// lossy part).
#[test]
fn printer_parser_roundtrip() {
    Checker::new("random_programs::printer_parser_roundtrip").cases(64).run(
        &program_gen(),
        |program| {
            let f = compile(program);
            let text1 = gmt_ir::display(&f).to_string();
            let g = gmt_ir::parse(&text1).expect("parse printed IR");
            let text2 = gmt_ir::display(&g).to_string();
            let h = gmt_ir::parse(&text2).expect("parse round-tripped IR");
            prop_assert_eq!(&gmt_ir::display(&h).to_string(), &text2, "fixed point");
            let rf = run(&f, &[], &exec()).expect("original runs");
            let rg = run(&g, &[], &exec()).expect("round-tripped runs");
            prop_assert_eq!(rf.return_value, rg.return_value);
            prop_assert_eq!(&rf.output, &rg.output);
            prop_assert_eq!(rf.counts.total(), rg.counts.total());
            Ok(())
        },
    );
}

/// Under an *exact* profile (same input), a plan's estimated
/// dynamic cost must equal the measured dynamic communication —
/// the planner's cost model and the generated code agree, both for
/// baseline MTCG and for COCO plans.
#[test]
fn plan_cost_equals_measured_communication() {
    let gen: Gen<(Vec<Stmt>, u64)> = program_gen().zip(full_u64());
    Checker::new("random_programs::plan_cost_equals_measured_communication").cases(40).run(
        &gen,
        |(program, seed)| {
            let f = compile(program);
            let seq = run(&f, &[], &exec()).expect("sequential");
            let partition = seeded_partition(&f, 2, *seed);
            let pdg = Pdg::build(&f);

            let base_plan = gmt_mtcg::baseline_plan(&f, &pdg, &partition).unwrap();
            let (coco_plan, _) =
                optimize(&f, &pdg, &partition, &seq.profile, &CocoConfig::default());
            for plan in [base_plan, coco_plan] {
                let estimated = plan.dynamic_cost(&f, &seq.profile);
                let out = gmt_mtcg::generate_with_plan(&f, &partition, plan).expect("codegen");
                let mt = run_mt(
                    &out.threads,
                    &[],
                    |_, _| {},
                    &QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: 32 },
                    &exec(),
                )
                .expect("mt run");
                prop_assert_eq!(
                    estimated,
                    mt.totals().comm_total(),
                    "plan cost model must match reality"
                );
            }
            Ok(())
        },
    );
}
