//! The pre-decoded execution engine must be observably identical to
//! the ID-walking reference executors — not just same answers, but
//! same dynamic counts, same profiles, same cycle counts, and same
//! per-core stall/hit statistics. The figure pipeline runs entirely on
//! the decoded engine, so any divergence here would silently corrupt
//! the reproduced results.
//!
//! Three layers are checked, each against its `*_reference` twin:
//! the single-threaded interpreter, the multi-threaded interpreter
//! (over MTCG-generated thread programs), and the cycle-level machine
//! model (single-threaded and multi-threaded, under the default
//! machine and a stressed one: narrow issue, static branch prediction,
//! single-element queues). A final regression sweeps every catalog
//! kernel on its train input.

use gmt_integration_tests::{compile, program_gen, seeded_partition, Stmt};
use gmt_ir::decoded::{DecodedFunction, DecodedProgram};
use gmt_ir::interp::{run_decoded, run_reference, ExecConfig};
use gmt_ir::interp_mt::{run_mt_decoded, run_mt_reference, QueueConfig};
use gmt_pdg::Pdg;
use gmt_sim::{
    check_attribution, simulate_decoded, simulate_decoded_opts, simulate_decoded_traced_opts,
    simulate_reference, BranchModel, MachineConfig, SimOptions, SimResult, TraceAggregator,
};
use gmt_testkit::{full_u64, prop_assert_eq, ranged, Checker, Gen};

fn exec() -> ExecConfig {
    ExecConfig { max_steps: 5_000_000 }
}

/// A stressed machine: narrow issue, static branch prediction, and
/// single-element queues, so structural, mispredict, and queue stalls
/// all fire.
fn stress_machine() -> MachineConfig {
    let mut m = MachineConfig::default().with_queue_depth(1);
    m.issue_width = 2;
    m.branch_model = BranchModel::StaticBtfn { penalty: 3 };
    m
}

fn assert_sim_eq(a: &SimResult, b: &SimResult) -> Result<(), String> {
    prop_assert_eq!(a.cycles, b.cycles);
    prop_assert_eq!(a.return_value, b.return_value);
    prop_assert_eq!(&a.output, &b.output);
    prop_assert_eq!(&a.cores, &b.cores, "per-core stall/issue stats");
    prop_assert_eq!(
        (a.hits_l1, a.hits_l2, a.hits_l3, a.hits_mem),
        (b.hits_l1, b.hits_l2, b.hits_l3, b.hits_mem)
    );
    Ok(())
}

/// Runs the decoded engine with the stall fast-forward on and off,
/// checks both against `reference` (all observable statistics), checks
/// the engine-step conservation law (every skipped cycle is a step the
/// per-cycle run really took), and re-runs the fast-forward engine
/// traced to prove the aggregated stall spans still attribute every
/// cycle of every core.
fn assert_skip_equivalence(
    program: &DecodedProgram,
    args: &[i64],
    init: fn(&gmt_ir::interp::MemoryLayout, &mut gmt_ir::interp::Memory),
    machine: &MachineConfig,
    reference: &SimResult,
) -> Result<(), String> {
    let skip = simulate_decoded_opts(program, args, init, machine, SimOptions {
        fast_forward: true,
    })
    .expect("fast-forward sim");
    let noskip = simulate_decoded_opts(program, args, init, machine, SimOptions {
        fast_forward: false,
    })
    .expect("per-cycle sim");
    assert_sim_eq(&skip, reference)?;
    assert_sim_eq(&noskip, reference)?;
    prop_assert_eq!(noskip.skipped_cycles, 0, "per-cycle engine never skips");
    prop_assert_eq!(
        skip.engine_steps + skip.skipped_cycles,
        noskip.engine_steps,
        "skipped cycles are exactly the steps the per-cycle run took"
    );
    let ncores = reference.cores.len();
    let mut agg = TraceAggregator::new(ncores, machine.sa.num_queues, 16);
    let traced = simulate_decoded_traced_opts(program, args, init, machine, &mut agg, SimOptions {
        fast_forward: true,
    })
    .expect("traced fast-forward sim");
    assert_sim_eq(&traced, reference)?;
    check_attribution(&agg, &traced)
        .map_err(|e| format!("stall spans break cycle attribution: {e}"))?;
    Ok(())
}

/// Single-threaded interpreter: the decoded path reproduces the
/// reference byte for byte — return value, output trace, dynamic
/// counts, edge profile, and final memory.
#[test]
fn st_interpreter_matches_reference() {
    Checker::new("decoded_equivalence::st_interpreter_matches_reference").cases(64).run(
        &program_gen(),
        |program| {
            let f = compile(program);
            let reference = run_reference(&f, &[], &exec()).expect("reference run");
            let d = DecodedFunction::decode(&f);
            let decoded = run_decoded(&d, &[], &exec()).expect("decoded run");
            prop_assert_eq!(decoded.return_value, reference.return_value);
            prop_assert_eq!(&decoded.output, &reference.output);
            prop_assert_eq!(decoded.counts, reference.counts);
            prop_assert_eq!(&decoded.profile, &reference.profile);
            prop_assert_eq!(decoded.memory.cells(), reference.memory.cells());
            Ok(())
        },
    );
}

/// Multi-threaded interpreter over MTCG-generated threads: identical
/// results, per-thread counts, and memory at both queue depths.
#[test]
fn mt_interpreter_matches_reference() {
    let gen: Gen<(Vec<Stmt>, u64, u32)> =
        program_gen().zip(full_u64()).zip(ranged(2u32, 4)).map(|((p, s), n)| (p, s, n));
    Checker::new("decoded_equivalence::mt_interpreter_matches_reference").cases(48).run(
        &gen,
        |(program, seed, n)| {
            let f = compile(program);
            let partition = seeded_partition(&f, *n, *seed);
            let pdg = Pdg::build(&f);
            let out = gmt_mtcg::generate(&f, &pdg, &partition).expect("mtcg");
            let program = DecodedProgram::decode(&out.threads).expect("decode");
            for cap in [1usize, 32] {
                let qc =
                    QueueConfig { num_queues: out.num_queues.max(1) as usize, capacity: cap };
                let reference = run_mt_reference(&out.threads, &[], |_, _| {}, &qc, &exec())
                    .expect("reference mt run");
                let decoded = run_mt_decoded(&program, &[], |_, _| {}, &qc, &exec())
                    .expect("decoded mt run");
                prop_assert_eq!(decoded.return_value, reference.return_value);
                prop_assert_eq!(&decoded.output, &reference.output);
                prop_assert_eq!(&decoded.per_thread, &reference.per_thread);
                prop_assert_eq!(decoded.memory.cells(), reference.memory.cells());
            }
            Ok(())
        },
    );
}

/// Cycle simulator: the decoded engine reproduces cycle counts, core
/// statistics, and cache hit counters exactly — single-threaded and on
/// MTCG-generated thread pairs, under the default and the stressed
/// machine.
#[test]
fn simulator_matches_reference() {
    let gen: Gen<(Vec<Stmt>, u64)> = program_gen().zip(full_u64());
    Checker::new("decoded_equivalence::simulator_matches_reference").cases(32).run(
        &gen,
        |(program, seed)| {
            let f = compile(program);
            let partition = seeded_partition(&f, 2, *seed);
            let pdg = Pdg::build(&f);
            let out = gmt_mtcg::generate(&f, &pdg, &partition).expect("mtcg");
            for machine in [MachineConfig::default(), stress_machine()] {
                let mut machine = machine;
                if out.num_queues as usize > machine.sa.num_queues {
                    machine.sa.num_queues = out.num_queues as usize;
                }
                // Single-threaded.
                let st = std::slice::from_ref(&f);
                let reference =
                    simulate_reference(st, &[], |_, _| {}, &machine).expect("reference sim");
                let program = DecodedProgram::decode(st).expect("decode");
                assert_skip_equivalence(&program, &[], |_, _| {}, &machine, &reference)?;
                // Multi-threaded.
                let reference = simulate_reference(&out.threads, &[], |_, _| {}, &machine)
                    .expect("reference mt sim");
                let program = DecodedProgram::decode(&out.threads).expect("decode");
                assert_skip_equivalence(&program, &[], |_, _| {}, &machine, &reference)?;
            }
            Ok(())
        },
    );
}

/// Regression: every catalog kernel, on its train input, is bit-equal
/// between the decoded and reference paths for both the interpreter
/// and the simulator.
#[test]
fn catalog_kernels_match_reference() {
    for w in gmt_workloads::catalog() {
        let cfg = gmt_workloads::exec_config();
        let reference = gmt_ir::interp::run_with_memory_reference(
            &w.function,
            &w.train_args,
            w.init,
            &cfg,
        )
        .unwrap_or_else(|e| panic!("{}: reference run: {e}", w.benchmark));
        let d = DecodedFunction::decode(&w.function);
        let decoded = gmt_ir::interp::run_decoded_with_memory(&d, &w.train_args, w.init, &cfg)
            .unwrap_or_else(|e| panic!("{}: decoded run: {e}", w.benchmark));
        assert_eq!(decoded.return_value, reference.return_value, "{}", w.benchmark);
        assert_eq!(decoded.output, reference.output, "{}", w.benchmark);
        assert_eq!(decoded.counts, reference.counts, "{}", w.benchmark);
        assert_eq!(decoded.profile, reference.profile, "{}", w.benchmark);
        assert_eq!(decoded.memory.cells(), reference.memory.cells(), "{}", w.benchmark);

        let machine = MachineConfig::default();
        let st = std::slice::from_ref(&w.function);
        let ref_sim = simulate_reference(st, &w.train_args, w.init, &machine)
            .unwrap_or_else(|e| panic!("{}: reference sim: {e}", w.benchmark));
        let program = DecodedProgram::decode(st).expect("decode");
        let dec_sim = simulate_decoded(&program, &w.train_args, w.init, &machine)
            .unwrap_or_else(|e| panic!("{}: decoded sim: {e}", w.benchmark));
        if let Err(msg) = assert_sim_eq(&dec_sim, &ref_sim) {
            panic!("{}: {msg}", w.benchmark);
        }
        if let Err(msg) = assert_skip_equivalence(&program, &w.train_args, w.init, &machine, &ref_sim)
        {
            panic!("{}: single-threaded: {msg}", w.benchmark);
        }
    }
}

/// Every catalog kernel as a queue-coupled DSWP thread pair — the
/// fast-forward's target shape — is byte-identical between the
/// fast-forward, per-cycle, and reference engines, at the paper's
/// uniform depth-32 array and at single-element queues (maximum
/// backpressure), with exact trace attribution.
#[test]
fn catalog_mt_kernels_match_reference_with_fast_forward() {
    use gmt_core::{CocoConfig, Parallelizer, Scheduler};
    for w in gmt_workloads::catalog() {
        let train = w.run_train().unwrap_or_else(|e| panic!("{}: train: {e}", w.benchmark));
        let p = Parallelizer::new(Scheduler::dswp(2))
            .with_coco(CocoConfig::default())
            .parallelize(&w.function, &train.profile)
            .unwrap_or_else(|e| panic!("{}: parallelize: {e}", w.benchmark));
        let program = DecodedProgram::decode(p.threads()).expect("decode");
        for depth in [32usize, 1] {
            let mut machine = MachineConfig::default().with_queue_depth(depth);
            if p.num_queues() as usize > machine.sa.num_queues {
                machine.sa.num_queues = p.num_queues() as usize;
            }
            let ref_sim = simulate_reference(p.threads(), &w.train_args, w.init, &machine)
                .unwrap_or_else(|e| panic!("{}: reference mt sim: {e}", w.benchmark));
            if let Err(msg) =
                assert_skip_equivalence(&program, &w.train_args, w.init, &machine, &ref_sim)
            {
                panic!("{} (depth {depth}): {msg}", w.benchmark);
            }
        }
    }
}
