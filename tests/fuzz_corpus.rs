//! Replays every seed in `tests/fuzz_corpus/corpus.txt` through the
//! full differential oracle: each entry is a historical fuzzer finding
//! and must stay fixed. Add new entries via the `fuzz` bin (it appends
//! shrunk findings automatically) and keep the file checked in.

use gmt_fuzz::{case_from_seed, default_path, run_case};

#[test]
fn corpus_entries_stay_fixed() {
    let path = default_path();
    let entries = gmt_fuzz::corpus::load(&path)
        .unwrap_or_else(|e| panic!("corpus at {} is corrupted: {e}", path.display()));
    assert!(
        !entries.is_empty(),
        "corpus at {} is missing or empty — the repo ships at least one entry",
        path.display()
    );
    for entry in entries {
        let case = case_from_seed(entry.seed);
        if let Err(e) = run_case(&case) {
            panic!(
                "corpus seed {:#018x} regressed ({}): {e}\nrepro: GMT_TESTKIT_SEED={:#x} \
                 cargo run --release -p gmt-fuzz --bin fuzz",
                entry.seed, entry.label, entry.seed
            );
        }
    }
}
